"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    coefficient_of_variation,
    empirical_ccdf,
    empirical_cdf,
    zipf_weights,
)
from repro.cdn.cache import CacheLevel, TwoLevelCache
from repro.cdn.policies import make_policy
from repro.client.abr import BufferBasedAbr, ChunkObservation, RateBasedAbr
from repro.client.buffer import PlaybackBuffer
from repro.client.rendering import rate_drop_term
from repro.net.prefix import prefix_of
from repro.net.tcp import TcpConnection
from repro.net.path import NetworkPath
from repro.workload.catalog import Video, chunk_size_bytes
from repro.workload.popularity import PopularityModel

finite_floats = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)

LADDER = (235, 375, 560, 750, 1050, 1750, 2350, 3000)


class TestCdfProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = empirical_cdf(samples)
        assert np.all(np.diff(cdf.ps) >= 0)
        assert 0.0 < cdf.ps[0] <= 1.0
        assert cdf.ps[-1] == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_cdf_ccdf_complement(self, samples):
        cdf = empirical_cdf(samples)
        ccdf = empirical_ccdf(samples)
        for x in samples:
            assert cdf.prob_at(x) + ccdf.prob_at(x) == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    def test_inverse_cdf_within_sample_range(self, samples, p):
        cdf = empirical_cdf(samples)
        value = cdf.value_at(p)
        assert min(samples) <= value <= max(samples)

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_cv_nonnegative(self, samples):
        cv = coefficient_of_variation(samples)
        assert np.isnan(cv) or cv >= 0.0


class TestZipfProperties:
    @given(st.integers(min_value=1, max_value=5000),
           st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    def test_weights_normalized_and_sorted(self, n, alpha):
        weights = zipf_weights(n, alpha)
        assert abs(weights.sum() - 1.0) < 1e-9
        assert np.all(np.diff(weights) <= 1e-15)

    @given(st.integers(min_value=2, max_value=2000),
           st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_sampled_ranks_valid(self, n, alpha, seed):
        model = PopularityModel(n_videos=n, alpha=alpha)
        ranks = model.sample_ranks(np.random.default_rng(seed), 100)
        assert ranks.min() >= 0 and ranks.max() < n


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30),
                      st.integers(min_value=1, max_value=40)),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from(["lru", "fifo", "gdsize", "perfect-lfu"]),
    )
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, operations, policy_name):
        cache = CacheLevel(100, make_policy(policy_name))
        for key, size in operations:
            if not cache.lookup(key):
                cache.insert(key, size)
            assert cache.used_bytes <= cache.capacity_bytes
            assert cache.used_bytes >= 0

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100)
    )
    @settings(max_examples=50)
    def test_two_level_lookup_admit_consistency(self, keys):
        cache = TwoLevelCache(50, 500)
        for key in keys:
            status = cache.lookup(key, 10)
            if status.value == "miss":
                cache.admit(key, 10)
            # after a miss+admit, the object must be resident
            assert cache.contains(key)

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=80)
    )
    @settings(max_examples=50)
    def test_small_working_set_always_hits_after_admit(self, keys):
        """A working set far below capacity must never be evicted."""
        cache = TwoLevelCache(10_000, 100_000)
        seen = set()
        for key in keys:
            status = cache.lookup(key, 10)
            if key in seen:
                assert status.is_hit
            else:
                cache.admit(key, 10)
                seen.add(key)


class TestBufferProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=100.0, max_value=20_000.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_buffer_conservation(self, chunks):
        """Media in = media played + media buffered + media lost-to-nothing
        (nothing: stalls do not destroy media)."""
        buffer = PlaybackBuffer()
        t = 0.0
        total_media = 0.0
        for media_ms, gap_ms in chunks:
            t += gap_ms
            buffer.on_chunk_ready(0, media_ms, t)
            total_media += media_ms
            assert buffer.level_ms >= media_ms - 1e-6  # just-added media present
            assert buffer.level_ms <= total_media + 1e-6
        assert buffer.total_media_ms == total_media
        assert buffer.total_rebuffer_ms >= 0.0

    @given(
        st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False),
    )
    def test_level_at_monotone_decreasing(self, t1, t2):
        assume(t1 <= t2)
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 0.0)
        assert buffer.level_at(t1) >= buffer.level_at(t2)


class TestAbrProperties:
    @given(st.lists(st.floats(min_value=50.0, max_value=100_000.0, allow_nan=False),
                    min_size=1, max_size=20))
    def test_rate_abr_pick_always_on_ladder(self, throughputs):
        abr = RateBasedAbr(LADDER)
        for tp in throughputs:
            abr.observe(ChunkObservation(1000.0, 0.0, 1000.0, int(tp * 125)))
            assert abr.choose_bitrate(0.0) in LADDER

    @given(st.floats(min_value=0.0, max_value=100_000.0, allow_nan=False))
    def test_buffer_abr_pick_always_on_ladder(self, level):
        abr = BufferBasedAbr(LADDER)
        assert abr.choose_bitrate(level) in LADDER

    @given(st.lists(st.floats(min_value=50.0, max_value=100_000.0, allow_nan=False),
                    min_size=3, max_size=10))
    def test_estimate_never_exceeds_max_sample(self, throughputs):
        """Harmonic mean is bounded by the max sample."""
        abr = RateBasedAbr(LADDER, window=10)
        for tp in throughputs:
            abr.observe(ChunkObservation(1000.0, 0.0, 1000.0, int(tp * 125)))
        estimate = abr.estimate_kbps()
        assert estimate <= max(throughputs) * 1.01


class TestRenderingProperties:
    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_rate_drop_term_bounded(self, rate):
        term = rate_drop_term(rate)
        assert 0.0 <= term <= 0.40

    @given(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def test_rate_drop_term_monotone_nonincreasing(self, r1, r2):
        assume(r1 <= r2)
        assert rate_drop_term(r1) >= rate_drop_term(r2)


class TestTcpProperties:
    @given(
        st.integers(min_value=1460, max_value=3_000_000),
        st.floats(min_value=5.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=1_000.0, max_value=100_000.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_transfer_invariants(self, nbytes, rtt, bw, seed):
        rng = np.random.default_rng(seed)
        path = NetworkPath(
            base_rtt_ms=rtt,
            bottleneck_kbps=bw,
            loss_rate=0.01,
            jitter_sigma=0.1,
            rng=rng,
            episode_gap_mean_ms=1e12,
        )
        conn = TcpConnection(path, rng)
        result = conn.transfer(nbytes, 0.0)
        segments_needed = int(np.ceil(nbytes / conn.mss))
        # every needed segment was sent at least once
        assert result.segments_sent >= segments_needed
        assert result.segments_retx == result.segments_sent - segments_needed
        assert 0.0 <= result.retx_rate < 1.0
        # physics: every round costs at least one round trip, so the
        # transfer cannot finish faster than its own fastest RTT sample.
        # (Comparing against base rtt directly is statistically unsound:
        # the lognormal measurement noise has no lower bound, so a sample
        # can dip below any fixed fraction of the base.)
        assert result.duration_ms >= result.min_rtt_ms
        assert result.duration_ms >= nbytes * 8.0 / bw * 0.8
        # SRTT ended positive and sane
        assert conn.srtt_ms is not None and conn.srtt_ms > 0

    @given(st.lists(st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
                    min_size=1, max_size=50))
    def test_srtt_stays_within_sample_hull(self, samples):
        rng = np.random.default_rng(0)
        path = NetworkPath(
            base_rtt_ms=50.0, bottleneck_kbps=10_000.0, loss_rate=0.0,
            jitter_sigma=0.1, rng=rng, episode_gap_mean_ms=1e12,
        )
        conn = TcpConnection(path, rng)
        for sample in samples:
            conn.observe_rtt(sample)
        assert min(samples) - 1e-6 <= conn.srtt_ms <= max(samples) + 1e-6


class TestMiscProperties:
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_prefix_of_any_ipv4(self, a, b, c, d):
        prefix = prefix_of(f"{a}.{b}.{c}.{d}")
        assert prefix == f"{a}.{b}.{c}.0/24"

    @given(st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
           st.floats(min_value=1.0, max_value=60_000.0, allow_nan=False))
    def test_chunk_size_scales(self, bitrate, duration):
        size = chunk_size_bytes(bitrate, duration)
        assert size == int(bitrate * duration / 8.0)

    @given(st.floats(min_value=6000.0, max_value=10_000_000.0, allow_nan=False))
    def test_video_chunks_cover_duration(self, duration_ms):
        video = Video(video_id=0, rank=0, duration_ms=duration_ms)
        total = sum(video.chunk_duration_ms(i) for i in range(video.n_chunks))
        assert total == pytest.approx(duration_ms, abs=1e-6)
