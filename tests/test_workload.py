"""Unit tests for the workload subpackage: randomness, geo, popularity,
catalog, clients, sessions."""

import numpy as np
import pytest

from repro.workload import geo
from repro.workload.catalog import (
    CHUNK_DURATION_MS,
    DEFAULT_BITRATE_LADDER_KBPS,
    Catalog,
    Video,
    chunk_size_bytes,
    generate_catalog,
)
from repro.workload.clients import (
    PopulationConfig,
    generate_population,
)
from repro.workload.popularity import PopularityModel
from repro.workload.randomness import (
    bounded_lognormal,
    bounded_normal,
    make_rng,
    session_rng,
    spawn,
    stable_hash64,
)
from repro.workload.sessions import SessionGenerator


class TestRandomness:
    def test_stable_hash_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")
        assert stable_hash64("abc") != stable_hash64("abd")

    def test_spawn_independent_streams(self):
        a = spawn(1, "a").random(5)
        b = spawn(1, "b").random(5)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        assert np.allclose(spawn(1, "x").random(5), spawn(1, "x").random(5))

    def test_session_rng_varies_by_index(self):
        assert not np.allclose(session_rng(1, 0).random(3), session_rng(1, 1).random(3))

    def test_bounded_lognormal_respects_bounds(self, rng):
        for _ in range(200):
            v = bounded_lognormal(rng, 10.0, 2.0, 5.0, 20.0)
            assert 5.0 <= v <= 20.0

    def test_bounded_lognormal_mean_roughly_right(self, rng):
        samples = [bounded_lognormal(rng, 50.0, 0.3) for _ in range(2000)]
        assert 40.0 < np.mean(samples) < 60.0

    def test_bounded_lognormal_nonpositive_mean(self, rng):
        assert bounded_lognormal(rng, 0.0, 1.0, low=2.0) == 2.0

    def test_bounded_normal_respects_bounds(self, rng):
        for _ in range(200):
            assert 0.0 <= bounded_normal(rng, 1.0, 5.0, 0.0, 2.0) <= 2.0

    def test_make_rng_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()


class TestGeo:
    def test_haversine_zero_distance(self):
        assert geo.haversine_km(40.0, -74.0, 40.0, -74.0) == 0.0

    def test_haversine_known_distance(self):
        # New York -> Los Angeles is ~3940 km
        d = geo.haversine_km(40.71, -74.01, 34.05, -118.24)
        assert 3800 < d < 4100

    def test_haversine_symmetric(self):
        d1 = geo.haversine_km(40.0, -74.0, 34.0, -118.0)
        d2 = geo.haversine_km(34.0, -118.0, 40.0, -74.0)
        assert d1 == pytest.approx(d2)

    def test_propagation_rtt_linear(self):
        assert geo.propagation_rtt_ms(1000.0) == pytest.approx(
            2 * geo.propagation_rtt_ms(500.0)
        )

    def test_propagation_rtt_rejects_negative(self):
        with pytest.raises(ValueError):
            geo.propagation_rtt_ms(-1.0)

    def test_cross_country_rtt_plausible(self):
        # coast-to-coast RTT should land in the tens of ms
        rtt = geo.propagation_rtt_ms(4000.0)
        assert 40.0 < rtt < 120.0

    def test_sample_city_respects_pool(self, rng):
        for _ in range(20):
            city = geo.sample_city(rng, geo.INTL_CLIENT_CITIES)
            assert city.country != "US"

    def test_jittered_point_near_city(self, rng):
        city = geo.US_POP_CITIES[0]
        point = geo.jittered_point(rng, city, spread_km=10.0)
        d = geo.haversine_km(point.lat, point.lon, city.lat, city.lon)
        assert d < 100.0

    def test_many_countries_available(self):
        assert len(geo.all_countries()) > 40

    def test_pop_cities_subset_of_client_cities(self):
        client_names = {c.name for c in geo.US_CLIENT_CITIES}
        assert all(c.name in client_names for c in geo.US_POP_CITIES)


class TestPopularityModel:
    def test_weights_sum_to_one(self):
        model = PopularityModel(n_videos=1000, alpha=0.8)
        assert model.weights.sum() == pytest.approx(1.0)

    def test_sample_ranks_in_range(self, rng):
        model = PopularityModel(n_videos=100)
        ranks = model.sample_ranks(rng, 1000)
        assert ranks.min() >= 0
        assert ranks.max() < 100

    def test_sampling_matches_weights(self, rng):
        model = PopularityModel(n_videos=50, alpha=1.0)
        ranks = model.sample_ranks(rng, 50_000)
        observed_top = np.mean(ranks == 0)
        assert observed_top == pytest.approx(model.rank_probability(0), rel=0.15)

    def test_top_fraction_mass_increasing(self):
        model = PopularityModel(n_videos=1000, alpha=0.8)
        assert model.top_fraction_mass(0.2) > model.top_fraction_mass(0.1)
        assert model.top_fraction_mass(1.0) == pytest.approx(1.0)

    def test_paper_skew_statistic(self):
        # §3: top 10% of videos receive ~66% of playbacks
        model = PopularityModel(n_videos=10_000, alpha=0.8)
        assert 0.55 < model.top_fraction_mass(0.10) < 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityModel(n_videos=0)
        model = PopularityModel(n_videos=10)
        with pytest.raises(ValueError):
            model.top_fraction_mass(0.0)
        with pytest.raises(ValueError):
            model.rank_probability(10)
        with pytest.raises(ValueError):
            model.sample_ranks(np.random.default_rng(0), -1)


class TestCatalog:
    def test_chunk_size_matches_bitrate(self):
        # 1000 kbps * 6 s = 6 Mbit = 750 kB
        assert chunk_size_bytes(1000.0) == 750_000

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            chunk_size_bytes(0.0)
        with pytest.raises(ValueError):
            chunk_size_bytes(100.0, duration_ms=0.0)

    def test_video_chunk_count(self):
        video = Video(video_id=0, rank=0, duration_ms=13_000.0)
        assert video.n_chunks == 3
        assert video.chunk_duration_ms(0) == CHUNK_DURATION_MS
        assert video.chunk_duration_ms(2) == pytest.approx(1000.0)

    def test_video_chunk_index_validation(self):
        video = Video(video_id=0, rank=0, duration_ms=6000.0)
        with pytest.raises(ValueError):
            video.chunk_duration_ms(1)

    def test_last_chunk_bytes_smaller(self):
        video = Video(video_id=0, rank=0, duration_ms=9_000.0)
        assert video.chunk_bytes(1, 1000) < video.chunk_bytes(0, 1000)

    def test_generate_catalog_shape(self):
        catalog = generate_catalog(n_videos=200, seed=1)
        assert len(catalog) == 200
        assert catalog[0].video_id == 0
        assert all(v.rank == v.video_id for v in catalog.videos)

    def test_generate_catalog_reproducible(self):
        c1 = generate_catalog(n_videos=50, seed=9)
        c2 = generate_catalog(n_videos=50, seed=9)
        assert [v.duration_ms for v in c1.videos] == [v.duration_ms for v in c2.videos]

    def test_durations_long_tailed(self):
        catalog = generate_catalog(n_videos=2000, seed=2)
        durations = [v.duration_ms for v in catalog.videos]
        assert min(durations) >= 10_000.0
        assert max(durations) > 10 * np.median(durations)

    def test_sample_videos_popularity_biased(self, rng):
        catalog = generate_catalog(n_videos=100, seed=3, zipf_alpha=1.2)
        ids = catalog.sample_videos(rng, 5000)
        assert np.mean(ids < 10) > np.mean(ids >= 90)

    def test_catalog_validation(self):
        with pytest.raises(ValueError):
            generate_catalog(n_videos=0)
        with pytest.raises(ValueError):
            generate_catalog(n_videos=10, bitrates_kbps=())
        with pytest.raises(ValueError):
            generate_catalog(n_videos=10, bitrates_kbps=(500, 300))

    def test_mismatched_popularity_rejected(self):
        videos = [Video(video_id=0, rank=0, duration_ms=6000.0)]
        with pytest.raises(ValueError):
            Catalog(videos=videos, popularity=PopularityModel(n_videos=5))


class TestPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_population(PopulationConfig(n_prefixes=800, seed=5))

    def test_size(self, population):
        assert len(population.prefixes) == 800

    def test_prefix_ids_unique(self, population):
        ids = [p.prefix_id for p in population.prefixes]
        assert len(set(ids)) == len(ids)

    def test_enterprise_fraction_near_config(self, population):
        fraction = np.mean([p.is_enterprise for p in population.prefixes])
        assert 0.08 < fraction < 0.20

    def test_us_fraction_dominant(self, population):
        us = np.mean([p.country == "US" for p in population.prefixes])
        assert us > 0.85

    def test_enterprise_jitter_higher(self, population):
        ent = [p.jitter_sigma for p in population.prefixes if p.is_enterprise]
        res = [p.jitter_sigma for p in population.prefixes if not p.is_enterprise]
        assert np.median(ent) > 3 * np.median(res)

    def test_some_enterprises_have_inflated_paths(self, population):
        inflations = [
            p.path_inflation_ms for p in population.prefixes if p.is_enterprise
        ]
        assert any(v > 0 for v in inflations)
        assert all(v == 0 for v in
                   (p.path_inflation_ms for p in population.prefixes
                    if not p.is_enterprise))

    def test_proxy_ips_shared_per_org(self, population):
        by_org = {}
        for p in population.prefixes:
            if p.proxy_ip and p.is_enterprise:
                by_org.setdefault(p.org, set()).add(p.proxy_ip)
        assert by_org, "expected some proxied enterprise prefixes"
        for ips in by_org.values():
            assert len(ips) == 1

    def test_host_ip_in_prefix(self, population):
        prefix = population.prefixes[0]
        ip = prefix.host_ip(42)
        assert ip.startswith(prefix.prefix_id.rsplit(".", 1)[0])
        with pytest.raises(ValueError):
            prefix.host_ip(0)
        with pytest.raises(ValueError):
            prefix.host_ip(255)

    def test_sample_client_fields(self, population, rng):
        client = population.sample_client(rng)
        assert client.cpu_cores in (2, 4, 8)
        assert 0.0 <= client.cpu_background_load <= 0.95
        assert client.bandwidth_kbps >= 1000.0
        assert client.platform.os in ("Windows", "Mac", "Linux")

    def test_transparent_proxy_hides_both_sides(self, population, rng):
        for _ in range(500):
            client = population.sample_client(rng)
            prefix = client.prefix
            if prefix.behind_proxy and prefix.proxy_transparent:
                assert client.beacon_ip == client.cdn_visible_ip == prefix.proxy_ip
                return
        pytest.skip("no transparent proxy sampled")

    def test_enterprise_proxy_mismatch_visible(self, population, rng):
        for _ in range(500):
            client = population.sample_client(rng)
            prefix = client.prefix
            if prefix.behind_proxy and not prefix.proxy_transparent:
                assert client.beacon_ip != client.cdn_visible_ip
                return
        pytest.skip("no explicit proxy sampled")

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_population(PopulationConfig(n_prefixes=0))


class TestSessionGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        catalog = generate_catalog(n_videos=100, seed=11)
        population = generate_population(PopulationConfig(n_prefixes=200, seed=11))
        return SessionGenerator(catalog=catalog, population=population, seed=11)

    def test_generates_requested_count(self, generator):
        plans = generator.generate_list(50)
        assert len(plans) == 50

    def test_arrivals_increasing(self, generator):
        plans = generator.generate_list(100)
        starts = [p.start_ms for p in plans]
        assert all(b > a for a, b in zip(starts[:-1], starts[1:]))

    def test_session_ids_unique(self, generator):
        plans = generator.generate_list(100)
        assert len({p.session_id for p in plans}) == 100

    def test_watch_chunks_within_video(self, generator):
        for plan in generator.generate_list(200):
            assert 1 <= plan.watch_chunks <= plan.video.n_chunks
            assert len(plan.visibility) == plan.watch_chunks

    def test_reproducible(self, generator):
        a = generator.generate_list(20)
        b = generator.generate_list(20)
        assert [p.video.video_id for p in a] == [p.video.video_id for p in b]
        assert [p.start_ms for p in a] == [p.start_ms for p in b]

    def test_median_session_length_short(self, generator):
        lengths = [p.watch_chunks for p in generator.generate_list(500)]
        assert 2 <= np.median(lengths) <= 8

    def test_visibility_mostly_true(self, generator):
        flags = [v for p in generator.generate_list(300) for v in p.visibility]
        assert np.mean(flags) > 0.85

    def test_validation(self, generator):
        with pytest.raises(ValueError):
            generator.generate_list(-1)
        with pytest.raises(ValueError):
            SessionGenerator(
                catalog=generate_catalog(n_videos=10, seed=0),
                population=generate_population(PopulationConfig(n_prefixes=10, seed=0)),
                arrival_rate_per_s=0.0,
            )
