"""Sharded parallel runner: determinism, merge canonicalization, fault tolerance.

The contract under test (docs/PARALLEL.md): for a fixed seed, the merged
dataset of ``ParallelSimulator(workers=K)`` equals the serial
``Simulator`` dataset record-for-record (canonical order), for any K, and
a crashed worker is retried once on a fresh process without changing the
result.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import Simulator, simulate
from repro.simulation.parallel import (
    ParallelSimulator,
    PeriodSpec,
    ShardFailedError,
    execute_periods,
)
from repro.simulation.shard import ShardSpec, partition_server_ids, shard_of_server
from repro.telemetry.io import load_dataset


def _config(**overrides) -> SimulationConfig:
    """The reference workload: small but exercises warmup + cache warming."""
    defaults = dict(
        n_sessions=150,
        warmup_sessions=100,
        seed=11,
        warm_first_chunks=True,
        prefetch_after_miss=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def serial_result():
    return Simulator(_config()).run()


@pytest.fixture(scope="module")
def parallel_result():
    return ParallelSimulator(_config(), workers=4).run()


class TestShardSpec:
    def test_partition_is_complete_and_disjoint(self):
        server_ids = [f"srv-{i:03d}" for i in range(40)]
        shards = partition_server_ids(server_ids, n_shards=4)
        assert len(shards) == 4
        seen = [sid for part in shards for sid in part]
        assert sorted(seen) == sorted(server_ids)
        assert len(seen) == len(set(seen))

    def test_assignment_is_stable(self):
        assert shard_of_server("srv-001", 4) == shard_of_server("srv-001", 4)

    def test_ownership_matches_hash(self):
        for n_shards in (2, 3, 5):
            spec = ShardSpec(index=1, n_shards=n_shards)
            for sid in ("srv-000", "srv-017", "edge-9"):
                assert spec.owns_server(sid) == (shard_of_server(sid, n_shards) == 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=3, n_shards=3)
        with pytest.raises(ValueError):
            ShardSpec(index=0, n_shards=0)
        with pytest.raises(ValueError):
            ShardSpec(index=0, n_shards=2, mode="by-coin-flip")


class TestSerialParallelEquality:
    def test_four_shards_equal_serial(self, serial_result, parallel_result):
        serial = serial_result.dataset.sorted()
        parallel = parallel_result.dataset
        assert serial.n_sessions == parallel.n_sessions
        assert serial.n_chunks == parallel.n_chunks
        # record-level equality, table by table (frozen dataclass ==)
        assert serial.player_sessions == parallel.player_sessions
        assert serial.player_chunks == parallel.player_chunks
        assert serial.cdn_sessions == parallel.cdn_sessions
        assert serial.cdn_chunks == parallel.cdn_chunks
        assert serial.tcp_snapshots == parallel.tcp_snapshots
        assert serial.ground_truth == parallel.ground_truth

    def test_shard_count_invariance(self, parallel_result):
        two = ParallelSimulator(_config(), workers=2).run()
        assert two.dataset == parallel_result.dataset

    def test_server_fleet_union_matches_serial(self, serial_result, parallel_result):
        assert set(parallel_result.servers) == set(serial_result.servers)
        assert parallel_result.fleet_miss_ratio == serial_result.fleet_miss_ratio

    def test_shard_reports_cover_all_sessions(self, parallel_result):
        reports = parallel_result.shard_reports
        assert [r.shard_index for r in reports] == [0, 1, 2, 3]
        assert all(r.succeeded and r.retries == 0 for r in reports)
        assert all(r.mode == "server" for r in reports)
        assert sum(r.sessions for r in reports) == parallel_result.dataset.n_sessions
        assert sum(r.n_servers for r in reports) == len(parallel_result.servers)

    def test_simulate_dispatches_on_config_workers(self, parallel_result):
        result = simulate(_config(workers=2))
        assert result.dataset == parallel_result.dataset
        assert len(result.shard_reports) == 2


class TestFaultTolerance:
    def test_crashed_shard_is_retried_once(self, parallel_result):
        runner = ParallelSimulator(
            _config(), workers=4, fail_shard_attempts={0: 1}
        )
        result = runner.run()
        report = result.shard_reports[0]
        assert report.retries == 1
        assert report.succeeded
        # the retry re-ran the same deterministic shard: output unchanged
        assert result.dataset == parallel_result.dataset

    def test_shard_failing_both_attempts_raises(self):
        runner = ParallelSimulator(
            _config(), workers=2, fail_shard_attempts={1: 2}
        )
        with pytest.raises(ShardFailedError, match="shard 1"):
            runner.run()

    def test_allow_partial_preserves_surviving_shards(self, parallel_result):
        runner = ParallelSimulator(
            _config(), workers=4, fail_shard_attempts={2: 2}, allow_partial=True
        )
        result = runner.run()
        failed = result.shard_reports[2]
        assert not failed.succeeded and failed.retries == 1 and failed.error
        survivors = [r for r in result.shard_reports if r.shard_index != 2]
        assert all(r.succeeded for r in survivors)
        # surviving shards still cover exactly their slice of the sessions
        # (timestamps may shift: the barrier max now spans survivors only)
        full_ids = {r.session_id for r in parallel_result.dataset.player_sessions}
        partial_ids = {r.session_id for r in result.dataset.player_sessions}
        assert partial_ids < full_ids
        assert result.dataset.n_sessions == sum(r.sessions for r in survivors)


class TestMultiPeriod:
    def test_run_periods_equals_serial_execute_periods(self):
        base = _config(n_sessions=80, warmup_sessions=60, seed=5)
        periods = [
            PeriodSpec(config=base, label="baseline"),
            PeriodSpec(
                config=base,
                label="incident",
                mutation="repro.simulation.scenarios:_flush_caches",
            ),
        ]
        serial_datasets, _ = execute_periods(periods)
        datasets, servers, reports = ParallelSimulator(
            base, workers=3
        ).run_periods(periods)
        assert len(datasets) == 2
        assert datasets[0] == serial_datasets[0].sorted()
        assert datasets[1] == serial_datasets[1].sorted()
        assert set(servers) and len(reports) == 3


class TestMultiPeriodSpill:
    """Multi-period spill: each period seals its own period-<name>/ spill."""

    @staticmethod
    def _periods(base):
        return [
            PeriodSpec(config=base, label="baseline"),
            PeriodSpec(config=base, label="surge", start_ms=500_000.0),
        ]

    def test_serial_layout_and_identity(self, tmp_path):
        base = _config(n_sessions=60, warmup_sessions=40, seed=5)
        memory_datasets, _ = execute_periods(self._periods(base))
        spilled = base.with_overrides(spill_dir=str(tmp_path))
        spill_datasets, _ = execute_periods(self._periods(spilled))
        layout = sorted(
            str(p.relative_to(tmp_path)) for p in tmp_path.rglob("spill.json")
        )
        assert layout == ["period-baseline/spill.json", "period-surge/spill.json"]
        for memory, spill in zip(memory_datasets, spill_datasets):
            assert list(spill.player_chunks) == memory.sorted().player_chunks
            assert spill.n_sessions == memory.n_sessions

    def test_sharded_layout_and_identity(self, tmp_path):
        base = _config(n_sessions=60, warmup_sessions=40, seed=5)
        serial_datasets, _ = execute_periods(self._periods(base))
        spilled = base.with_overrides(spill_dir=str(tmp_path))
        datasets, _, reports = ParallelSimulator(spilled, workers=2).run_periods(
            self._periods(spilled)
        )
        layout = sorted(
            str(p.relative_to(tmp_path)) for p in tmp_path.rglob("spill.json")
        )
        assert layout == [
            "shard-00/period-baseline/spill.json",
            "shard-00/period-surge/spill.json",
            "shard-01/period-baseline/spill.json",
            "shard-01/period-surge/spill.json",
        ]
        assert len(reports) == 2
        for serial, spill in zip(serial_datasets, datasets):
            assert list(spill.player_chunks) == serial.sorted().player_chunks
            assert list(spill.player_sessions) == serial.sorted().player_sessions

    def test_duplicate_labels_rejected(self, tmp_path):
        base = _config(spill_dir=str(tmp_path))
        periods = [PeriodSpec(config=base, label="p"), PeriodSpec(config=base, label="p")]
        with pytest.raises(ValueError, match="unique period labels"):
            execute_periods(periods)


class TestCli:
    def test_simulate_workers_flag(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = cli_main(
            [
                "simulate",
                "--sessions", "40",
                "--warmup", "30",
                "--seed", "11",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "on 2 shard workers" in captured
        assert "shard 0/2" in captured and "shard 1/2" in captured
        dataset = load_dataset(out)
        assert dataset.n_sessions == 40
        serial = Simulator(
            SimulationConfig(n_sessions=40, warmup_sessions=30, seed=11)
        ).run()
        assert dataset == serial.dataset.sorted()
