"""Columnar telemetry core: round-trips, spills, and the memory-mode contract.

The contract under test (docs/TELEMETRY.md): telemetry records are
byte-identical whichever memory mode produced them — in-memory lists,
serial spill, or sharded spill — and a corrupt or incompatible spill fails
loudly at open time, never silently mid-analysis.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.api import run
from repro.obs.manifest import dump_json
from repro.simulation.config import SimulationConfig
from repro.simulation.parallel import PeriodSpec, execute_periods
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.columnar import (
    COLUMN_SCHEMAS,
    SPILL_KINDS,
    ColumnOverflowError,
    array_to_records,
    iter_records,
    records_to_array,
    sort_array,
)
from repro.telemetry.dataset import Dataset
from repro.telemetry.io import save_dataset
from repro.telemetry.records import PlayerSessionRecord
from repro.telemetry.spill import (
    SPILL_MANIFEST_FILENAME,
    SpilledDataset,
    SpillError,
    SpillWriter,
)
from repro.telemetry.synth import synthesize_sharded, synthesize_spill


def _config(**overrides) -> SimulationConfig:
    defaults = dict(n_sessions=80, warmup_sessions=30, seed=13)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def reference_dataset():
    """One small simulated dataset, in-memory, canonically sorted."""
    return run(_config()).dataset.sorted()


def _kind_records(dataset, kind):
    return list(getattr(dataset, kind))


class TestColumnarRoundTrip:
    @pytest.mark.parametrize("kind", SPILL_KINDS)
    def test_exact_round_trip(self, reference_dataset, kind):
        records = _kind_records(reference_dataset, kind)
        assert records, f"reference run produced no {kind}"
        array = records_to_array(kind, records)
        assert array.dtype == COLUMN_SCHEMAS[kind].dtype
        assert array_to_records(kind, array) == records

    def test_round_trip_json_bytes_identical(self, reference_dataset):
        # the facade contract at its strictest: JSON serialization of a
        # round-tripped record equals the original byte for byte
        import dataclasses

        records = _kind_records(reference_dataset, "player_chunks")
        rebuilt = array_to_records("player_chunks", records_to_array("player_chunks", records))
        for a, b in zip(records, rebuilt):
            assert json.dumps(dataclasses.asdict(a)) == json.dumps(dataclasses.asdict(b))

    def test_sort_array_matches_dataset_sorted(self, reference_dataset):
        for kind in SPILL_KINDS:
            records = _kind_records(reference_dataset, kind)
            shuffled = list(reversed(records))
            resorted = array_to_records(kind, sort_array(kind, records_to_array(kind, shuffled)))
            assert [(r.session_id) for r in resorted] == [(r.session_id) for r in records]

    def test_string_overflow_raises_not_truncates(self):
        record = PlayerSessionRecord(
            session_id="x" * 25,  # column is S24
            client_ip="10.0.0.1",
            user_agent="ua",
            video_id=1,
            video_duration_ms=1.0,
            start_ms=0.0,
            os="linux",
            browser="b",
        )
        with pytest.raises(ColumnOverflowError, match="session_id"):
            records_to_array("player_sessions", [record])

    def test_iter_records_is_blockwise_lazy(self):
        # consuming one record must not require materializing the array
        array = records_to_array(
            "player_sessions",
            [
                PlayerSessionRecord(f"s{i:04d}", "ip", "ua", i, 1.0, 0.0, "os", "b")
                for i in range(10)
            ],
        )
        stream = iter_records("player_sessions", array)
        first = next(stream)
        assert first.session_id == "s0000"


class TestSpillWriterReader:
    def test_multi_run_spill_equals_canonical_order(self, reference_dataset, tmp_path):
        writer = SpillWriter(tmp_path / "s", threshold_rows=64)
        # feed records in emission order (the unsorted collector stream)
        raw = run(_config()).dataset
        for kind in SPILL_KINDS:
            for record in _kind_records(raw, kind):
                writer.add(kind, record)
        spilled = writer.finalize()
        manifest = json.loads((tmp_path / "s" / SPILL_MANIFEST_FILENAME).read_text())
        assert manifest["kinds"]["player_chunks"]["rows"] > 64  # several runs
        for kind in SPILL_KINDS:
            assert list(spilled.iter_kind(kind)) == _kind_records(reference_dataset, kind)

    def test_writer_refuses_existing_spill(self, tmp_path):
        SpillWriter(tmp_path / "s").finalize()
        with pytest.raises(SpillError, match="already holds a spill"):
            SpillWriter(tmp_path / "s")

    def test_finalize_is_idempotent(self, tmp_path):
        writer = SpillWriter(tmp_path / "s")
        assert writer.finalize() is writer.finalize()

    def test_add_array_rejects_wrong_dtype(self, tmp_path):
        writer = SpillWriter(tmp_path / "s")
        with pytest.raises(SpillError, match="does not match"):
            writer.add_array("player_chunks", np.zeros(3, dtype="f8"))

    def test_pickle_round_trip(self, tmp_path):
        spilled = synthesize_spill(tmp_path / "s", 100, seed=1, threshold_rows=128)
        clone = pickle.loads(pickle.dumps(spilled))
        assert list(clone.player_sessions) == list(spilled.player_sessions)


class TestSpillCorruptionRejection:
    def _spill(self, tmp_path):
        synthesize_spill(tmp_path / "s", 300, seed=2, threshold_rows=256)
        return tmp_path / "s"

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SpillError, match="no spill.json"):
            SpilledDataset(tmp_path / "empty")

    def test_corrupt_manifest_json(self, tmp_path):
        directory = self._spill(tmp_path)
        (directory / SPILL_MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(SpillError, match="corrupt spill manifest"):
            SpilledDataset(directory)

    def test_unknown_format_version(self, tmp_path):
        directory = self._spill(tmp_path)
        manifest = json.loads((directory / SPILL_MANIFEST_FILENAME).read_text())
        manifest["version"] = 999
        (directory / SPILL_MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(SpillError, match="version 999"):
            SpilledDataset(directory)

    def test_truncated_run_file(self, tmp_path):
        directory = self._spill(tmp_path)
        run_file = next(directory.glob("player_chunks-*.npy"))
        payload = run_file.read_bytes()
        run_file.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(SpillError):
            SpilledDataset(directory)

    def test_missing_run_file(self, tmp_path):
        directory = self._spill(tmp_path)
        next(directory.glob("tcp_snapshots-*.npy")).unlink()
        with pytest.raises(SpillError, match="missing"):
            SpilledDataset(directory)

    def test_row_count_mismatch(self, tmp_path):
        directory = self._spill(tmp_path)
        manifest = json.loads((directory / SPILL_MANIFEST_FILENAME).read_text())
        manifest["kinds"]["player_sessions"]["runs"][0]["rows"] += 1
        manifest["kinds"]["player_sessions"]["rows"] += 1
        (directory / SPILL_MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(SpillError, match="manifest declares"):
            SpilledDataset(directory)

    def test_dtype_mismatch(self, tmp_path):
        directory = self._spill(tmp_path)
        manifest = json.loads((directory / SPILL_MANIFEST_FILENAME).read_text())
        manifest["kinds"]["ground_truth"]["dtype"][0][1] = "<i4"
        (directory / SPILL_MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(SpillError, match="columnar schema"):
            SpilledDataset(directory)


class TestMemoryModeByteIdentity:
    """The tentpole invariant: memory mode never changes a single byte."""

    def test_serial_spill_equals_in_memory(self, reference_dataset, tmp_path):
        spilled = run(
            _config(spill_dir=str(tmp_path / "spill"), spill_threshold_rows=128)
        ).dataset
        assert isinstance(spilled, SpilledDataset)
        for kind in SPILL_KINDS:
            assert list(spilled.iter_kind(kind)) == _kind_records(reference_dataset, kind)

    def test_sharded_spill_equals_in_memory_bytes(self, reference_dataset, tmp_path):
        sharded = run(
            _config(
                workers=4,
                spill_dir=str(tmp_path / "spill"),
                spill_threshold_rows=128,
            )
        )
        out_mem = save_dataset(reference_dataset, tmp_path / "mem")
        out_spill = save_dataset(sharded.dataset, tmp_path / "sharded")
        for path in sorted(out_mem.iterdir()):
            assert (out_spill / path.name).read_bytes() == path.read_bytes(), path.name

    def test_metrics_document_byte_identical_across_modes(self, tmp_path):
        docs = [
            dump_json(run(config).metrics_document())
            for config in (
                _config(),
                _config(spill_dir=str(tmp_path / "a"), spill_threshold_rows=128),
                _config(workers=4, spill_dir=str(tmp_path / "b"), spill_threshold_rows=128),
            )
        ]
        assert docs[0] == docs[1] == docs[2]

    def test_spill_counters_live_in_manifest_not_metrics_doc(self, tmp_path):
        result = run(_config(spill_dir=str(tmp_path / "s"), spill_threshold_rows=128))
        document = result.metrics_document()
        assert not any(
            name.startswith("telemetry.spill.") for name in document["metrics"]["counters"]
        )
        execution = result.manifest()["execution"]
        assert execution["metrics"]["counters"]["telemetry.spill.rows_total"] > 0
        assert execution["spill_dir"] == str(tmp_path / "s")

    def test_streaming_sessions_equal_materialized(self, reference_dataset, tmp_path):
        spilled = run(
            _config(spill_dir=str(tmp_path / "s"), spill_threshold_rows=128)
        ).dataset
        for a, b in zip(spilled.iter_sessions(), reference_dataset.sessions()):
            assert a.session_id == b.session_id
            assert a.chunks == b.chunks
            assert a.player_session == b.player_session
            assert a.cdn_session == b.cdn_session


class TestCollectorModes:
    def test_discard_mode_holds_nothing(self):
        collector = TelemetryCollector(discard=True)
        collector.add_player_session(
            PlayerSessionRecord("s", "ip", "ua", 1, 1.0, 0.0, "os", "b")
        )
        dataset = collector.dataset()
        assert dataset.n_sessions == 0

    def test_multi_period_spill_routes_to_period_subdirs(self, tmp_path):
        # Unlabeled periods fall back to positional subdir names; the full
        # layout + identity contract lives in tests/test_parallel.py.
        config = _config(spill_dir=str(tmp_path / "s"))
        periods = [PeriodSpec(config=config), PeriodSpec(config=config)]
        execute_periods(periods)
        assert (tmp_path / "s" / "period-00").is_dir()
        assert (tmp_path / "s" / "period-01").is_dir()

    def test_merge_all_rejects_mixed_modes(self, tmp_path):
        spilled = synthesize_spill(tmp_path / "s", 50, seed=4)
        with pytest.raises(SpillError, match="in-memory"):
            SpilledDataset.merge_all([spilled, Dataset()])


class TestSyntheticGenerator:
    def test_sharded_generation_equals_serial(self, tmp_path):
        serial = synthesize_spill(tmp_path / "serial", 2000, seed=5, threshold_rows=512)
        sharded = synthesize_sharded(
            tmp_path / "sharded", 2000, 3, seed=5, threshold_rows=512
        )
        for kind in SPILL_KINDS:
            assert list(sharded.iter_kind(kind)) == list(serial.iter_kind(kind))

    def test_sessions_join_and_analyze(self, tmp_path):
        from repro.core import diagnose_dataset, qoe

        spilled = synthesize_spill(tmp_path / "s", 400, seed=6, threshold_rows=512)
        summary = qoe.summarize(spilled)
        assert summary["n_sessions"] == 400
        fractions = diagnose_dataset(spilled)
        assert fractions and abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_one_pass_consume_matches_classic(self, tmp_path):
        from repro.core import diagnose_dataset, qoe
        from repro.core.streaming import (
            LocalizationAccumulator,
            QoeAccumulator,
            consume,
        )

        spilled = synthesize_spill(tmp_path / "s", 300, seed=7, threshold_rows=512)
        q, loc = consume(spilled, QoeAccumulator(), LocalizationAccumulator())
        assert q == qoe.summarize(spilled)
        assert loc == diagnose_dataset(spilled)
