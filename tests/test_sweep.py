"""The scenario-matrix DSL and factorial sweep runner (docs/SCENARIOS.md).

Pins the written contracts:

* the override grammar (literals, scale/offset transforms, the
  execution/structured field bans);
* workload shapes resolve to the documented period structures;
* the canned scenarios re-expressed in the DSL resolve to exactly the
  configs the imperative builders produced;
* sweep grids enumerate deterministically (`axis=value+axis=value`
  names, last axis fastest) and round-trip through JSON;
* determinism: a grid run serially and with ``--workers 4`` produces
  byte-identical per-cell metrics documents and an identical aggregate
  report, and re-running a single cell reproduces its records;
* failures are captured per cell (``sweeps.cells_failed_total``), never
  killing the grid;
* the CLI surface (``repro sweep run|list|report``,
  ``repro scenario --json``) and the shipped example spec.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import run
from repro.cli import main
from repro.faults.spec import FaultSpec
from repro.simulation.config import SimulationConfig
from repro.sweep import (
    CANNED_SCENARIOS,
    WORKLOAD_SHAPES,
    AxisValue,
    PeriodDef,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    aggregate_report,
    format_report,
    load_cell_documents,
    outcome_document,
    run_cell,
    run_sweep,
)
from repro.sweep.spec import _apply_overrides

REPO_ROOT = Path(__file__).resolve().parent.parent

_SMALL_FAULT = {
    "name": "small-degradation",
    "description": "tiny server degradation for tests",
    "events": [
        {
            "id": "deg-1",
            "class": "server-degraded",
            "start_ms": 0,
            "end_ms": 1000000000000,
            "magnitude": 50.0,
        }
    ],
}


def _tiny_scenario(**kwargs) -> ScenarioSpec:
    base = {"n_sessions": 40, "warmup_sessions": 20}
    base.update(kwargs.pop("base", {}))
    return ScenarioSpec(name=kwargs.pop("name", "tiny"), base=base, seed=11, **kwargs)


# -- override grammar ---------------------------------------------------------


class TestOverrideGrammar:
    def test_literal_replaces(self):
        config = _apply_overrides(SimulationConfig(), {"zipf_alpha": 1.3})
        assert config.zipf_alpha == 1.3

    def test_scale_transform(self):
        base = SimulationConfig()
        config = _apply_overrides(base, {"arrival_rate_per_s": {"scale": 3.0}})
        assert config.arrival_rate_per_s == base.arrival_rate_per_s * 3.0

    def test_offset_transform(self):
        base = SimulationConfig()
        config = _apply_overrides(base, {"seed": {"offset": 1}})
        assert config.seed == base.seed + 1

    def test_int_fields_round_back_to_int(self):
        base = SimulationConfig().with_overrides(n_sessions=10)
        config = _apply_overrides(base, {"n_sessions": {"scale": 0.25}})
        assert config.n_sessions == 2 and isinstance(config.n_sessions, int)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            _apply_overrides(SimulationConfig(), {"not_a_field": 1})

    def test_execution_fields_rejected(self):
        with pytest.raises(ValueError, match="execution knob"):
            _apply_overrides(SimulationConfig(), {"workers": 4})

    def test_structured_fields_rejected(self):
        with pytest.raises(ValueError, match="structured object"):
            _apply_overrides(SimulationConfig(), {"population": {}})

    def test_malformed_transform_rejected(self):
        with pytest.raises(ValueError, match="one-key transform"):
            _apply_overrides(
                SimulationConfig(), {"zipf_alpha": {"scale": 2, "offset": 1}}
            )
        with pytest.raises(ValueError, match="one-key transform"):
            _apply_overrides(SimulationConfig(), {"zipf_alpha": {"multiply": 2}})


# -- scenarios and shapes -----------------------------------------------------


class TestScenarioSpec:
    def test_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            name="rt",
            description="round trip",
            workload="live-event-spike",
            workload_params={"arrival_scale": 2.0},
            base={"n_sessions": 50},
            seed=7,
        )
        path = spec.save(tmp_path / "spec.json")
        assert ScenarioSpec.load(path) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload shape"):
            ScenarioSpec(name="x", workload="tsunami")

    def test_unsafe_name_rejected(self):
        with pytest.raises(ValueError, match="unsafe characters"):
            ScenarioSpec(name="a/b")

    def test_resolve_applies_base_seed_and_execution(self):
        spec = _tiny_scenario()
        periods = spec.resolve(workers=4)
        assert len(periods) == 1
        config = periods[0].config
        assert config.n_sessions == 40
        assert config.seed == 11
        assert config.workers == 4

    def test_resolve_rejects_non_execution_kwargs(self):
        with pytest.raises(ValueError, match="not execution knobs"):
            _tiny_scenario().resolve(n_sessions=5)

    def test_faults_from_relative_path(self, tmp_path):
        (tmp_path / "f.json").write_text(json.dumps(_SMALL_FAULT))
        (tmp_path / "spec.json").write_text(
            json.dumps({"name": "s", "faults": "f.json"})
        )
        spec = ScenarioSpec.load(tmp_path / "spec.json")
        assert isinstance(spec.faults, FaultSpec)
        assert spec.faults.events[0].fault_id == "deg-1"


class TestWorkloadShapes:
    def test_registry_names(self):
        assert set(WORKLOAD_SHAPES) == {
            "steady",
            "diurnal",
            "live-event-spike",
            "short-session-skew",
            "regional-isp-outage",
        }

    def test_unknown_shape_param_rejected(self):
        with pytest.raises(ValueError, match="unknown workload_params"):
            ScenarioSpec(
                name="x", workload="diurnal", workload_params={"bogus": 1}
            ).resolve()

    def test_diurnal_period_structure(self):
        spec = ScenarioSpec(
            name="d", workload="diurnal", base={"n_sessions": 400}, seed=3
        )
        periods = spec.resolve()
        assert [p.label for p in periods] == ["night", "morning", "peak", "evening"]
        assert [p.config.n_sessions for p in periods] == [100, 100, 100, 100]
        base_rate = SimulationConfig().arrival_rate_per_s
        assert periods[2].config.arrival_rate_per_s == pytest.approx(base_rate * 1.6)
        # later phases continue the stream: no warmup, shifted seeds
        assert periods[0].config.seed == 3
        assert [p.config.warmup_sessions for p in periods[1:]] == [0, 0, 0]
        assert [p.config.seed for p in periods[1:]] == [4, 5, 6]

    def test_short_session_skew_sets_watch_knobs(self):
        periods = ScenarioSpec(name="s", workload="short-session-skew").resolve()
        config = periods[0].config
        assert config.watch_median_chunks == 2.0
        assert config.watch_sigma_chunks == 1.2
        assert config.zipf_alpha == 1.5

    def test_regional_isp_outage_contributes_faults(self):
        periods = ScenarioSpec(
            name="o",
            workload="regional-isp-outage",
            workload_params={"orgs": ["Verizon"], "loss": 0.1},
        ).resolve()
        faults = periods[0].config.faults
        assert faults is not None
        classes = {e.fault_class for e in faults.events}
        assert classes == {"network-latency", "network-loss"}
        assert all(e.orgs == ("Verizon",) for e in faults.events)


class TestCannedScenarios:
    def test_registry_matches_scenarios_module(self):
        from repro.simulation.scenarios import SCENARIOS

        assert set(SCENARIOS) == set(CANNED_SCENARIOS) == {
            "flash-crowd",
            "cache-flush",
            "backend-brownout",
        }

    def test_flash_crowd_resolution(self):
        baseline, incident = CANNED_SCENARIOS["flash-crowd"].resolve(seed=41)
        assert baseline.config.n_sessions == incident.config.n_sessions == 800
        assert baseline.config.warmup_sessions == 1600
        assert incident.config.warmup_sessions == 0
        assert incident.config.arrival_rate_per_s == pytest.approx(
            baseline.config.arrival_rate_per_s * 3.0
        )
        assert incident.config.zipf_alpha == 1.6
        assert incident.config.n_videos == 10
        assert incident.config.seed == baseline.config.seed + 1

    def test_cache_flush_keeps_simulator_reuse(self):
        # equal period configs are what lets execute_periods reuse the
        # warmed simulator for the incident period
        baseline, incident = CANNED_SCENARIOS["cache-flush"].resolve(seed=5)
        assert baseline.config == incident.config
        assert incident.mutation == "repro.simulation.scenarios:_flush_caches"

    def test_backend_brownout_mutation_args(self):
        _, incident = CANNED_SCENARIOS["backend-brownout"].resolve()
        assert incident.mutation == "repro.simulation.scenarios:_slow_backend"
        assert incident.mutation_args == (8.0,)

    def test_deprecated_builders_warn_and_delegate(self):
        from repro.simulation import scenarios

        with pytest.warns(DeprecationWarning):
            legacy = scenarios._periods_flash_crowd(seed=41)
        assert legacy == CANNED_SCENARIOS["flash-crowd"].resolve(seed=41)
        with pytest.warns(DeprecationWarning):
            legacy = scenarios._periods_backend_brownout(seed=2, slowdown=3.0)
        assert legacy[1].mutation_args == (3.0,)


# -- sweeps -------------------------------------------------------------------


def _grid_2x2(fault=True) -> SweepSpec:
    fault_values = [AxisValue(name="none")]
    if fault:
        fault_values.append(
            AxisValue(name="deg", faults=FaultSpec.from_dict(_SMALL_FAULT))
        )
    return SweepSpec(
        name="grid",
        scenario=_tiny_scenario(),
        axes=(
            SweepAxis(
                axis="mapping",
                values=(
                    AxisValue(
                        name="cache-focused",
                        overrides={"mapping_strategy": "cache-focused"},
                    ),
                    AxisValue(
                        name="random", overrides={"mapping_strategy": "random"}
                    ),
                ),
            ),
            SweepAxis(axis="fault", values=tuple(fault_values)),
        ),
    )


class TestSweepSpec:
    def test_cell_enumeration_order(self):
        spec = _grid_2x2()
        names = [cell.name for cell in spec.cells()]
        # declared axis order, last axis fastest
        assert names == [
            "mapping=cache-focused+fault=none",
            "mapping=cache-focused+fault=deg",
            "mapping=random+fault=none",
            "mapping=random+fault=deg",
        ]
        assert spec.n_cells == 4

    def test_cell_lookup(self):
        spec = _grid_2x2()
        cell = spec.cell("mapping=random+fault=deg")
        assert cell.coordinates == (("mapping", "random"), ("fault", "deg"))
        assert cell.scenario.base["mapping_strategy"] == "random"
        assert cell.scenario.faults is not None
        with pytest.raises(KeyError, match="no cell named"):
            spec.cell("mapping=bogus")

    def test_axis_value_patches_compose(self):
        spec = _grid_2x2()
        cell = spec.cell("mapping=cache-focused+fault=none")
        periods = cell.resolve(workers=2)
        assert periods[0].config.mapping_strategy == "cache-focused"
        assert periods[0].config.workers == 2
        assert periods[0].config.faults is None

    def test_duplicate_axis_rejected(self):
        axis = SweepAxis(axis="a", values=(AxisValue(name="x"),))
        with pytest.raises(ValueError, match="duplicate axis"):
            SweepSpec(name="s", axes=(axis, axis))

    def test_duplicate_value_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate value name"):
            SweepAxis(axis="a", values=(AxisValue(name="x"), AxisValue(name="x")))

    def test_round_trip(self, tmp_path):
        spec = _grid_2x2()
        path = spec.save(tmp_path / "sweep.json")
        loaded = SweepSpec.load(path)
        assert [c.name for c in loaded.cells()] == [c.name for c in spec.cells()]
        assert loaded == spec

    def test_canned_scenario_by_name(self):
        spec = SweepSpec.from_dict({"name": "s", "scenario": "flash-crowd"})
        assert spec.scenario == CANNED_SCENARIOS["flash-crowd"]
        with pytest.raises(ValueError, match="unknown canned scenario"):
            SweepSpec.from_dict({"name": "s", "scenario": "bogus"})

    def test_example_spec_is_a_12_cell_grid(self):
        spec = SweepSpec.load(REPO_ROOT / "examples" / "sweep_mapping_vs_faults.json")
        assert spec.n_cells == 12
        assert len(spec.axes) == 2
        names = [cell.name for cell in spec.cells()]
        assert "mapping=cache-focused+fault=cdn-degradation" in names
        # every fault axis value except the control carries a schedule
        faulted = [c for c in spec.cells() if c.scenario.faults is not None]
        assert len(faulted) == 9


# -- reports ------------------------------------------------------------------


class TestOutcomeDocument:
    def test_single_period_document(self):
        result = run(SimulationConfig(n_sessions=30, warmup_sessions=0, seed=3))
        document = outcome_document("solo", [""], [result.dataset])
        assert document["schema"] == "repro.sweep.outcome/1"
        assert document["periods"][0]["label"] == "measure"
        assert document["overall"]["n_sessions"] == 30
        assert "deltas" not in document
        assert "faultscore" not in document  # no labels, no block

    def test_faulted_document_carries_scorecard(self):
        config = SimulationConfig(
            n_sessions=40,
            warmup_sessions=20,
            seed=11,
            faults=FaultSpec.from_dict(_SMALL_FAULT),
        )
        result = run(config)
        document = outcome_document("faulted", [""], [result.dataset])
        score = document["faultscore"]
        assert score["n_labeled"] > 0
        assert 0.0 <= score["recall"] <= 1.0
        assert "server-degraded" in score["classes"]

    def test_aggregate_ranking_orders_and_failures(self):
        def doc(name, rebuf, recall):
            d = {
                "schema": "repro.sweep.outcome/1",
                "name": name,
                "periods": [],
                "overall": {
                    "n_sessions": 1,
                    "n_chunks": 1,
                    "qoe": {
                        "mean_rebuffer_rate_pct": rebuf,
                        "rebuffer_session_fraction": 0.0,
                        "median_startup_ms": 900.0,
                        "p90_startup_ms": 2000.0,
                        "median_bitrate_kbps": 2500.0,
                    },
                },
            }
            if recall is not None:
                d["faultscore"] = {
                    "n_chunks": 1,
                    "n_labeled": 5,
                    "recall": recall,
                    "precision": 1.0,
                    "classes": {},
                }
            return d

        report = aggregate_report(
            "s",
            {
                "a": doc("a", 2.0, 0.3),
                "b": doc("b", 0.5, 0.9),
                "c": doc("c", 1.0, None),
            },
            failed={"d": "ValueError: boom"},
        )
        assert report["ranking"]["by_rebuffer"] == ["b", "c", "a"]
        assert report["ranking"]["by_fault_recall"] == ["b", "a"]
        assert report["n_cells"] == 4 and report["n_failed"] == 1
        assert report["sweeps"] == {"cells_total": 4, "cells_failed_total": 1}
        text = format_report(report)
        assert "d: ValueError: boom" in text


# -- the runner and its determinism contract ----------------------------------


class TestSweepRunner:
    def test_serial_vs_sharded_byte_identity(self, tmp_path):
        spec = _grid_2x2()
        serial = run_sweep(spec, workers=1, out_dir=tmp_path / "serial")
        sharded = run_sweep(spec, workers=4, out_dir=tmp_path / "sharded")
        assert serial.n_failed == sharded.n_failed == 0
        for a, b in zip(serial.cells, sharded.cells):
            assert a.name == b.name
            assert a.metrics_json == b.metrics_json, a.name
            assert a.document == b.document, a.name
        assert serial.report == sharded.report
        # and the on-disk artifacts are byte-identical too
        for rel in ["report.json", "report.txt", "sweep.json"]:
            assert (tmp_path / "serial" / rel).read_bytes() == (
                tmp_path / "sharded" / rel
            ).read_bytes()
        for cell in serial.cells:
            for artifact in ["cell.json", "metrics.json"]:
                rel = Path("cells") / cell.name / artifact
                assert (tmp_path / "serial" / rel).read_bytes() == (
                    tmp_path / "sharded" / rel
                ).read_bytes(), str(rel)

    def test_serial_vs_jobs_byte_identity(self, tmp_path):
        # whole-cell process-pool parallelism (`repro sweep run --jobs`)
        # must keep every artifact byte-identical to the serial run
        spec = _grid_2x2()
        serial = run_sweep(spec, workers=1, out_dir=tmp_path / "serial")
        pooled = run_sweep(spec, workers=1, jobs=4, out_dir=tmp_path / "jobs")
        assert serial.n_failed == pooled.n_failed == 0
        for a, b in zip(serial.cells, pooled.cells):
            assert a.name == b.name
            assert a.metrics_json == b.metrics_json, a.name
            assert a.document == b.document, a.name
        assert serial.report == pooled.report
        for rel in ["report.json", "report.txt", "sweep.json"]:
            assert (tmp_path / "serial" / rel).read_bytes() == (
                tmp_path / "jobs" / rel
            ).read_bytes()
        for cell in serial.cells:
            for artifact in ["cell.json", "metrics.json"]:
                rel = Path("cells") / cell.name / artifact
                assert (tmp_path / "serial" / rel).read_bytes() == (
                    tmp_path / "jobs" / rel
                ).read_bytes(), str(rel)

    def test_single_cell_rerun_reproduces(self, tmp_path):
        spec = _grid_2x2()
        full = run_sweep(spec, workers=1)
        name = "mapping=random+fault=deg"
        partial = run_sweep(spec, workers=1, cell_names=[name])
        assert [cell.name for cell in partial.cells] == [name]
        full_cell = next(cell for cell in full.cells if cell.name == name)
        assert partial.cells[0].metrics_json == full_cell.metrics_json
        assert partial.cells[0].document == full_cell.document

    def test_unknown_cell_name_raises_before_running(self):
        with pytest.raises(KeyError, match="no cell"):
            run_sweep(_grid_2x2(), cell_names=["bogus"])

    def test_failed_cell_is_captured_not_fatal(self, tmp_path):
        spec = SweepSpec(
            name="half-broken",
            scenario=_tiny_scenario(),
            axes=(
                SweepAxis(
                    axis="v",
                    values=(
                        AxisValue(name="ok"),
                        # zipf_alpha <= 0 fails SimulationConfig validation
                        # at cell resolution time
                        AxisValue(name="bad", overrides={"zipf_alpha": -1.0}),
                    ),
                ),
            ),
        )
        result = run_sweep(spec, out_dir=tmp_path)
        assert result.n_failed == 1
        failed = next(cell for cell in result.cells if not cell.succeeded)
        assert failed.name == "v=bad"
        assert failed.error == "ValueError: alpha must be non-negative"
        assert result.metrics.counter("sweeps.cells_total").value == 2
        assert result.metrics.counter("sweeps.cells_failed_total").value == 1
        assert result.report["failed"]["v=bad"].startswith("ValueError")
        assert (tmp_path / "cells" / "v=bad" / "error.txt").is_file()
        assert not (tmp_path / "cells" / "v=bad" / "cell.json").exists()
        # the report still ranks the surviving cell
        assert result.report["ranking"]["by_rebuffer"] == ["v=ok"]

    def test_run_cell_document_coordinates(self):
        spec = _grid_2x2(fault=False)
        cell = spec.cell("mapping=random+fault=none")
        result = run_cell(cell)
        assert result.succeeded
        assert result.document["coordinates"] == {
            "mapping": "random",
            "fault": "none",
        }
        assert result.document["name"] == cell.name

    def test_report_reaggregation_matches(self, tmp_path):
        spec = _grid_2x2(fault=False)
        result = run_sweep(spec, out_dir=tmp_path)
        documents, failures = load_cell_documents(tmp_path)
        assert failures == {}
        rebuilt = aggregate_report(spec.name, documents, failures)
        assert rebuilt == result.report


# -- CLI ----------------------------------------------------------------------


class TestSweepCLI:
    def _write_spec(self, tmp_path) -> Path:
        path = tmp_path / "grid.json"
        _grid_2x2(fault=False).save(path)
        return path

    def test_sweep_list(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["sweep", "list", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "mapping=cache-focused+fault=none" in out

    def test_sweep_run_and_report(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        code = main(
            ["sweep", "run", str(path), "--out", str(out_dir),
             "--cell", "mapping=random+fault=none"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best rebuffer ratio first" in out
        report_before = (out_dir / "report.json").read_bytes()
        assert main(["sweep", "report", str(out_dir)]) == 0
        assert "rebuf%" in capsys.readouterr().out
        # re-aggregation of the one-cell run is reproducible
        assert (out_dir / "report.json").read_bytes() == report_before

    def test_sweep_run_unknown_cell_exits_2(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["sweep", "run", str(path), "--cell", "nope"]) == 2
        assert "no cell" in capsys.readouterr().err

    def test_sweep_report_on_empty_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "cells").mkdir()
        assert main(["sweep", "report", str(tmp_path)]) == 2
        assert "no cells found" in capsys.readouterr().err


class TestScenarioJsonExport:
    def test_scenario_json_file_shares_sweep_serialization(
        self, tmp_path, capsys, monkeypatch
    ):
        # shrink the canned scenario so the CLI test stays fast; the
        # export path is identical for any size
        from repro.sweep import spec as sweep_spec

        small = dict(CANNED_SCENARIOS)
        small["flash-crowd"] = sweep_spec.ScenarioSpec(
            name="flash-crowd",
            workload="live-event-spike",
            base={"n_sessions": 40, "warmup_sessions": 40},
        )
        monkeypatch.setattr(sweep_spec, "CANNED_SCENARIOS", small)
        out = tmp_path / "outcome.json"
        code = main(
            ["scenario", "flash-crowd", "--seed", "7", "--json", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["schema"] == "repro.sweep.outcome/1"
        assert document["name"] == "flash-crowd"
        assert [p["label"] for p in document["periods"]] == [
            "baseline",
            "incident",
        ]
        assert "deltas" in document
