"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.telemetry.io import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--sessions", "10", "--out", "x", "--abr", "buffer"]
        )
        assert args.sessions == 10
        assert args.abr == "buffer"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_simulate_engine_flag(self):
        args = build_parser().parse_args(
            ["simulate", "--out", "x", "--engine", "fleet"]
        )
        assert args.engine == "fleet"
        default = build_parser().parse_args(["simulate", "--out", "x"])
        assert default.engine == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--out", "x", "--engine", "warp"])


class TestCommands:
    def test_simulate_engine_recorded_in_manifest(self, tmp_path, capsys):
        import json

        out = tmp_path / "ds"
        code = main(
            [
                "simulate",
                "--sessions", "70",
                "--warmup", "0",
                "--seed", "3",
                "--engine", "fleet",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "(fleet engine)" in capsys.readouterr().out
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["execution"]["engine"] == "fleet"

    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig03", "fig22", "table01", "table04", "table05"):
            assert experiment_id in output

    def test_simulate_then_analyze_then_findings(self, tmp_path, capsys):
        out = str(tmp_path / "trace")
        assert (
            main(
                [
                    "simulate",
                    "--sessions",
                    "120",
                    "--warmup",
                    "120",
                    "--seed",
                    "3",
                    "--out",
                    out,
                ]
            )
            == 0
        )
        dataset = load_dataset(out)
        assert dataset.n_sessions == 120

        assert main(["analyze", out]) == 0
        output = capsys.readouterr().out
        assert "QoE summary" in output
        assert "Bottleneck localization" in output

        # tiny cold traces cannot support every finding; the command must
        # still run to completion and render the report
        code = main(["findings", out])
        output = capsys.readouterr().out
        assert "Key findings:" in output
        assert code in (0, 1)

    def test_analyze_without_proxy_filter(self, tmp_path, capsys):
        out = str(tmp_path / "trace")
        main(["simulate", "--sessions", "60", "--warmup", "0", "--out", out])
        capsys.readouterr()
        assert main(["analyze", out, "--no-proxy-filter"]) == 0
        assert "proxy filter" not in capsys.readouterr().out

    def test_experiment_standalone(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        assert "fig13" in capsys.readouterr().out

    def test_experiment_plot_flag(self, capsys):
        assert main(["experiment", "fig20", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "fig20" in output
        assert "CDF" in output or "x vs y" in output

    def test_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])

    def test_missing_dataset_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope")])

    def test_report_writes_markdown(self, tmp_path, capsys):
        out = str(tmp_path / "report.md")
        code = main(["report", "--scale", "tiny", "--out", out])
        assert code in (0, 1)  # tiny scale may not support every check
        text = open(out, encoding="utf-8").read()
        assert text.startswith("# Reproduction report")
        assert "fig03" in text and "table05" in text
        assert "experiments pass all checks" in text
