"""Experiment modules exercised on small synthetic datasets.

The medium-simulation tests (test_experiments.py) validate shapes; these
tests validate the experiment *computations* themselves on hand-crafted
records where the right answer is known exactly — and exercise the
parameterization (bin edges, thresholds, rank points) cheaply.
"""

import numpy as np
import pytest

from helpers import (
    cdn_chunk,
    cdn_session,
    make_dataset,
    player_chunk,
    player_session,
    tcp_snap,
)
from repro.analysis.experiments import common, run_experiment
from repro.telemetry.dataset import Dataset


def build_sessions(specs):
    """Build a dataset from per-session chunk specs.

    *specs* is {session_id: [(player_kwargs, cdn_kwargs, tcp_kwargs), ...]}.
    """
    dataset = Dataset()
    for session_id, chunks in specs.items():
        dataset.player_sessions.append(player_session(session=session_id))
        dataset.cdn_sessions.append(cdn_session(session=session_id))
        for index, (p_kw, c_kw, t_kw) in enumerate(chunks):
            dataset.player_chunks.append(
                player_chunk(session=session_id, chunk=index, **p_kw)
            )
            dataset.cdn_chunks.append(
                cdn_chunk(session=session_id, chunk=index, **c_kw)
            )
            dataset.tcp_snapshots.append(
                tcp_snap(session=session_id, chunk=index, t=500.0 * (index + 1), **t_kw)
            )
    return dataset


class TestCommonScales:
    def test_known_scales(self):
        config = common.standard_config("tiny")
        assert config.n_sessions == common.SCALES["tiny"][0]

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            common.standard_config("galactic")

    def test_results_cached_per_scale(self):
        assert common.standard_result("tiny") is common.standard_result("tiny")


class TestFig05Synthetic:
    def test_known_medians(self):
        specs = {
            "hit": [
                (dict(), dict(cache_status="hit_ram", d_read_ms=1.0), dict())
                for _ in range(10)
            ],
            "miss": [
                (dict(), dict(cache_status="miss", d_read_ms=11.0, d_be_ms=80.0), dict())
                for _ in range(10)
            ],
        }
        result = run_experiment("fig05", build_sessions(specs))
        assert result.summary["median_hit_total_ms"] == pytest.approx(1.4, abs=0.01)
        assert result.summary["median_miss_total_ms"] == pytest.approx(91.4, abs=0.01)
        assert result.summary["retry_timer_chunk_fraction"] == pytest.approx(0.5)


class TestFig15Synthetic:
    def test_retx_rate_computed_from_deltas(self):
        # one session: 20 retx in chunk 0, none later
        specs = {
            "s": [
                (dict(), dict(chunk_bytes=1_460_000), dict(retx_total=20)),
                (dict(), dict(chunk_bytes=1_460_000), dict(retx_total=20)),
                (dict(), dict(chunk_bytes=1_460_000), dict(retx_total=20)),
            ]
        }
        result = run_experiment("fig15", build_sessions(specs))
        rates = dict(result.series["retx_rate_by_chunk"])
        assert rates[0] == pytest.approx(2.0)  # 20/1000 segments = 2%
        assert rates[1] == 0.0 and rates[2] == 0.0
        assert result.checks["first_chunk_highest"]


class TestFig16Synthetic:
    def test_split_and_shares(self):
        specs = {
            "good": [(dict(dfb_ms=100.0, dlb_ms=900.0), dict(), dict())] * 25,
            "bad": [(dict(dfb_ms=200.0, dlb_ms=9800.0), dict(), dict())] * 25,
        }
        result = run_experiment("fig16", build_sessions(specs))
        assert result.summary["n_good"] == 25.0
        assert result.summary["n_bad"] == 25.0
        assert result.summary["median_latency_share_bad"] == pytest.approx(0.02)
        assert result.checks["bad_chunks_throughput_dominated"]


class TestTable04Synthetic:
    def test_counts_and_threshold(self):
        # an "enterprise" whose sessions alternate srtt 10 and 1000 (CV>1),
        # and a quiet ISP
        def jittery(chunks=4):
            # one huge spike among small samples: CV well above 1 (an
            # even 50/50 alternation mathematically caps CV below 1)
            return [
                (dict(), dict(), dict(srtt_ms=2000.0 if i == chunks - 1 else 10.0))
                for i in range(chunks)
            ]

        def calm(chunks=4):
            return [(dict(), dict(), dict(srtt_ms=50.0)) for i in range(chunks)]

        dataset = Dataset()
        for i in range(40):
            sid = f"e{i}"
            dataset.player_sessions.append(player_session(session=sid))
            dataset.cdn_sessions.append(
                cdn_session(session=sid, org="Enterprise#1")
            )
            for index, (p, c, t) in enumerate(jittery()):
                dataset.player_chunks.append(player_chunk(session=sid, chunk=index))
                dataset.cdn_chunks.append(cdn_chunk(session=sid, chunk=index))
                dataset.tcp_snapshots.append(
                    tcp_snap(session=sid, chunk=index, t=500.0 * (index + 1), **t)
                )
        for i in range(40):
            sid = f"r{i}"
            dataset.player_sessions.append(player_session(session=sid))
            dataset.cdn_sessions.append(cdn_session(session=sid, org="Comcast"))
            for index, (p, c, t) in enumerate(calm()):
                dataset.player_chunks.append(player_chunk(session=sid, chunk=index))
                dataset.cdn_chunks.append(cdn_chunk(session=sid, chunk=index))
                dataset.tcp_snapshots.append(
                    tcp_snap(session=sid, chunk=index, t=500.0 * (index + 1), **t)
                )
        result = run_experiment("table04", dataset, min_sessions=30)
        rows = {org: pct for org, _, _, pct in result.series["org_rows"]}
        assert rows["Enterprise#1"] == pytest.approx(100.0)
        assert rows["Comcast"] == 0.0
        assert result.all_checks_passed


class TestFig19Synthetic:
    def test_rate_bins_and_hw_bar(self):
        specs = {"s": []}
        # slow chunks (rate 0.4) dropping 35%, fast chunks (rate 3) dropping ~3%
        for _ in range(20):
            specs["s"].append(
                (
                    dict(dfb_ms=3000.0, dlb_ms=12_000.0, dropped_frames=63),
                    dict(),
                    dict(),
                )
            )
            specs["s"].append(
                (
                    dict(dfb_ms=200.0, dlb_ms=1800.0, dropped_frames=5),
                    dict(),
                    dict(),
                )
            )
        dataset = build_sessions(specs)
        # add hardware-rendered chunks in a second session
        dataset.player_sessions.append(player_session(session="hw"))
        dataset.cdn_sessions.append(cdn_session(session="hw"))
        for i in range(10):
            dataset.player_chunks.append(
                player_chunk(
                    session="hw", chunk=i, hw_rendered=True, dropped_frames=0
                )
            )
            dataset.cdn_chunks.append(cdn_chunk(session="hw", chunk=i))
        result = run_experiment("fig19", dataset)
        assert result.series["hw_rendering_drop_pct"] == pytest.approx(0.0)
        rows = result.series["rows_center_mean_median_q25_q75_n"]
        by_center = {center: mean for center, mean, *_ in rows}
        assert by_center[0.25] == pytest.approx(35.0)
        assert by_center[3.5] == pytest.approx(5 / 180 * 100, abs=0.1)


class TestFig14Synthetic:
    def test_conditional_probability(self):
        # chunk 1 always rebuffers when it lost packets, never otherwise
        specs = {}
        for i in range(10):
            lossy = i < 5
            specs[f"s{i}"] = [
                (dict(), dict(), dict(retx_total=0)),
                (
                    dict(rebuffer_count=1 if lossy else 0,
                         rebuffer_ms=500.0 if lossy else 0.0),
                    dict(),
                    dict(retx_total=10 if lossy else 0),
                ),
            ]
        result = run_experiment("fig14", build_sessions(specs), max_chunk_id=3)
        rows = {cid: (p, pl) for cid, p, pl in result.series["rows_chunkid_p_pgivenloss"]}
        assert rows[1][0] == pytest.approx(0.5)  # unconditional
        assert rows[1][1] == pytest.approx(1.0)  # conditional on loss
