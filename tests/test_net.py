"""Unit tests for the network substrate: prefix utils, path model, TCP."""

import numpy as np
import pytest

from repro.net.path import NetworkPath, build_session_path
from repro.net.prefix import group_by_prefix, is_valid_ipv4, prefix_of
from repro.net.tcp import (
    DEFAULT_MSS,
    MAX_CWND_SEGMENTS,
    RTO_FLOOR_MS,
    TcpConnection,
)
from repro.workload.clients import PopulationConfig, generate_population
from repro.workload.geo import GeoPoint


def make_path(rng, **kwargs):
    defaults = dict(
        base_rtt_ms=60.0,
        bottleneck_kbps=20_000.0,
        loss_rate=0.0,
        jitter_sigma=0.1,
        rng=rng,
        episode_gap_mean_ms=1e12,  # episodes off unless a test wants them
    )
    defaults.update(kwargs)
    return NetworkPath(**defaults)


class TestPrefixUtils:
    def test_prefix_of_basic(self):
        assert prefix_of("10.1.2.3") == "10.1.2.0/24"

    def test_prefix_of_boundary(self):
        assert prefix_of("10.1.2.0") == "10.1.2.0/24"
        assert prefix_of("10.1.2.255") == "10.1.2.0/24"

    def test_prefix_of_invalid(self):
        with pytest.raises(ValueError):
            prefix_of("not-an-ip")

    def test_is_valid_ipv4(self):
        assert is_valid_ipv4("192.168.1.1")
        assert not is_valid_ipv4("999.1.1.1")
        assert not is_valid_ipv4("")

    def test_group_by_prefix(self):
        groups = group_by_prefix([("10.0.0.1", "a"), ("10.0.0.9", "b"), ("10.0.1.1", "c")])
        assert groups["10.0.0.0/24"] == ["a", "b"]
        assert groups["10.0.1.0/24"] == ["c"]


class TestNetworkPath:
    def test_sample_rtt_near_base(self, rng):
        path = make_path(rng)
        samples = [path.sample_rtt(0.0) for _ in range(100)]
        assert 40.0 < np.median(samples) < 80.0

    def test_bdp_formula(self, rng):
        path = make_path(rng, base_rtt_ms=100.0, bottleneck_kbps=8000.0)
        # 8000 kbps * 100 ms = 800 kbit = 100 kB
        assert path.bdp_bytes == pytest.approx(100_000.0)

    def test_buffer_scales_with_multiple(self, rng):
        p1 = make_path(rng, buffer_bdp_multiple=1.0)
        p2 = make_path(np.random.default_rng(0), buffer_bdp_multiple=3.0)
        assert p2.buffer_bytes == pytest.approx(3.0 * p1.buffer_bytes)

    def test_no_loss_when_under_capacity(self, rng):
        path = make_path(rng)
        assert path.segment_loss_probability(1000.0, 0.0) == 0.0

    def test_overflow_loss_when_over_capacity(self, rng):
        path = make_path(rng)
        capacity = path.bdp_bytes + path.buffer_bytes
        assert path.segment_loss_probability(capacity * 2.0, 0.0) > 0.2

    def test_loss_probability_capped(self, rng):
        path = make_path(rng, loss_rate=0.1)
        assert path.segment_loss_probability(1e12, 0.0) <= 0.9

    def test_episode_inflates_rtt_and_cuts_bandwidth(self):
        rng = np.random.default_rng(2)
        path = make_path(
            rng,
            jitter_sigma=1.0,
            episode_gap_mean_ms=1000.0,
            episode_duration_mean_ms=50_000.0,
        )
        multipliers = [path.congestion_multiplier(t) for t in range(0, 200_000, 500)]
        assert max(multipliers) > 1.5
        t_in_episode = next(
            t for t, m in zip(range(0, 200_000, 500), multipliers) if m > 1.5
        )
        assert path.current_bottleneck_kbps(t_in_episode) < path.bottleneck_kbps

    def test_episode_state_resets_after_episode(self):
        rng = np.random.default_rng(3)
        path = make_path(
            rng,
            jitter_sigma=1.0,
            episode_gap_mean_ms=10_000.0,
            episode_duration_mean_ms=1_000.0,
        )
        multipliers = [path.congestion_multiplier(t) for t in range(0, 500_000, 250)]
        assert min(multipliers) == 1.0  # quiet periods exist

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_path(rng, base_rtt_ms=0.0)
        with pytest.raises(ValueError):
            make_path(rng, bottleneck_kbps=0.0)
        with pytest.raises(ValueError):
            make_path(rng, loss_rate=1.5)


class TestBuildSessionPath:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_population(PopulationConfig(n_prefixes=400, seed=3))

    def test_far_clients_higher_rtt(self, population, rng):
        server = GeoPoint(lat=41.88, lon=-87.63, city="Chicago", country="US")
        intl = [p for p in population.prefixes if p.country not in ("US", "CA")]
        us = [p for p in population.prefixes if p.country == "US" and not p.is_enterprise]
        assert intl and us
        intl_rtts = [
            build_session_path(p, server, 20_000.0, np.random.default_rng(i)).base_rtt_ms
            for i, p in enumerate(intl[:30])
        ]
        us_rtts = [
            build_session_path(p, server, 20_000.0, np.random.default_rng(i)).base_rtt_ms
            for i, p in enumerate(us[:30])
        ]
        assert np.median(intl_rtts) > np.median(us_rtts)

    def test_zero_loss_sessions_exist(self, population):
        server = GeoPoint(lat=41.88, lon=-87.63, city="Chicago", country="US")
        prefix = population.prefixes[0]
        losses = [
            build_session_path(prefix, server, 20_000.0, np.random.default_rng(i)).loss_rate
            for i in range(100)
        ]
        zero_fraction = np.mean([l == 0.0 for l in losses])
        assert 0.35 < zero_fraction < 0.85

    def test_bandwidth_respected(self, population, rng):
        server = GeoPoint(lat=41.88, lon=-87.63, city="Chicago", country="US")
        path = build_session_path(population.prefixes[0], server, 5_000.0, rng)
        assert path.bottleneck_kbps <= 5_000.0


class TestTcpConnection:
    def test_srtt_initialization(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        conn.observe_rtt(100.0)
        assert conn.srtt_ms == 100.0
        assert conn.rttvar_ms == 50.0

    def test_srtt_converges(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        conn.observe_rtt(100.0)
        for _ in range(50):
            conn.observe_rtt(20.0)
        assert conn.srtt_ms == pytest.approx(20.0, rel=0.05)

    def test_per_ack_updates_converge_faster(self, rng):
        slow = TcpConnection(make_path(rng), rng)
        fast = TcpConnection(make_path(np.random.default_rng(0)), rng)
        slow.observe_rtt(100.0)
        fast.observe_rtt(100.0)
        slow.observe_rtt(500.0, n_acks=1)
        fast.observe_rtt(500.0, n_acks=16)
        assert fast.srtt_ms > slow.srtt_ms

    def test_rto_floor(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        conn.observe_rtt(10.0)
        assert conn.rto_ms >= RTO_FLOOR_MS

    def test_rto_before_samples(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        assert conn.rto_ms == 1000.0

    def test_observe_rtt_validation(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        with pytest.raises(ValueError):
            conn.observe_rtt(0.0)
        with pytest.raises(ValueError):
            conn.observe_rtt(10.0, n_acks=0)

    def test_transfer_delivers_all_bytes(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        result = conn.transfer(500_000, 0.0)
        assert result.duration_ms > 0
        assert result.segments_sent >= int(np.ceil(500_000 / DEFAULT_MSS))

    def test_transfer_duration_bounded_by_bottleneck(self, rng):
        # 1 MB over 10 Mbps cannot finish faster than ~800 ms.
        path = make_path(rng, bottleneck_kbps=10_000.0)
        conn = TcpConnection(path, rng)
        result = conn.transfer(1_000_000, 0.0)
        assert result.duration_ms > 700.0

    def test_slow_start_doubles_window(self, rng):
        conn = TcpConnection(make_path(rng), rng, initial_cwnd=10)
        conn.transfer(400_000, 0.0)
        assert conn.cwnd > 10

    def test_paced_growth_slower(self):
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        normal = TcpConnection(make_path(r1), r1)
        paced = TcpConnection(make_path(r2), r2, slow_start_growth=1.3)
        normal_result = normal.transfer(400_000, 0.0)
        paced_result = paced.transfer(400_000, 0.0)
        assert paced_result.rounds >= normal_result.rounds

    def test_rwnd_caps_inflight(self, rng):
        conn = TcpConnection(make_path(rng), rng, max_window_segments=16)
        conn.transfer(2_000_000, 0.0)
        assert conn.cwnd <= MAX_CWND_SEGMENTS
        # throughput cap: 16 segs per ~60 ms round -> long transfer
        result = conn.transfer(1_000_000, 1e6)
        assert result.rounds >= 1_000_000 / (16 * DEFAULT_MSS)

    def test_lossy_path_retransmits(self):
        rng = np.random.default_rng(5)
        path = make_path(rng, loss_rate=0.05)
        conn = TcpConnection(path, rng)
        result = conn.transfer(1_000_000, 0.0)
        assert result.segments_retx > 0
        assert 0.0 < result.retx_rate < 0.5
        assert conn.retx_total == result.segments_retx

    def test_loss_shrinks_window(self):
        rng = np.random.default_rng(6)
        path = make_path(rng, loss_rate=0.0)
        conn = TcpConnection(path, rng)
        conn.transfer(2_000_000, 0.0)
        cwnd_clean = conn.cwnd
        path.loss_rate = 0.2
        conn.transfer(500_000, 1e6)
        assert conn.cwnd < cwnd_clean

    def test_snapshots_on_grid(self, rng):
        path = make_path(rng, base_rtt_ms=200.0, bottleneck_kbps=2_000.0)
        conn = TcpConnection(path, rng, snapshot_interval_ms=500.0)
        result = conn.transfer(1_500_000, 0.0)
        assert result.duration_ms > 1500.0
        assert len(result.samples) >= 2
        gaps = np.diff([s.t_ms for s in result.samples])
        assert np.all(gaps >= 499.0)

    def test_snapshot_grid_realigns_after_idle(self, rng):
        path = make_path(rng, base_rtt_ms=200.0, bottleneck_kbps=2_000.0)
        conn = TcpConnection(path, rng)
        conn.transfer(1_500_000, 0.0)
        late = conn.transfer(1_500_000, 1_000_000.0)
        assert all(s.t_ms > 1_000_000.0 for s in late.samples)

    def test_state_sample_fields(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        conn.transfer(100_000, 0.0)
        sample = conn.state_sample(123.0)
        assert sample.t_ms == 123.0
        assert sample.mss == DEFAULT_MSS
        assert sample.cwnd_segments >= 1
        assert sample.throughput_kbps > 0

    def test_transfer_validation(self, rng):
        conn = TcpConnection(make_path(rng), rng)
        with pytest.raises(ValueError):
            conn.transfer(0, 0.0)

    def test_constructor_validation(self, rng):
        path = make_path(rng)
        with pytest.raises(ValueError):
            TcpConnection(path, rng, mss=0)
        with pytest.raises(ValueError):
            TcpConnection(path, rng, initial_cwnd=0)
        with pytest.raises(ValueError):
            TcpConnection(path, rng, slow_start_growth=1.0)
        with pytest.raises(ValueError):
            TcpConnection(path, rng, max_window_segments=0)

    def test_restart_after_idle(self, rng):
        path = make_path(rng)
        conn = TcpConnection(path, rng, restart_after_idle=True)
        conn.transfer(2_000_000, 0.0)
        grown = conn.cwnd
        conn.transfer(100_000, 1e9)  # long idle -> restart
        assert conn.cwnd < grown

    def test_first_transfer_highest_retx_on_shallow_path(self):
        """Slow-start overshoot concentrates loss in the first transfer."""
        rng = np.random.default_rng(8)
        path = make_path(
            rng, bottleneck_kbps=6_000.0, buffer_bdp_multiple=1.5, loss_rate=0.0
        )
        conn = TcpConnection(path, rng, max_window_segments=4096)
        rates = []
        t = 0.0
        for _ in range(6):
            result = conn.transfer(800_000, t)
            rates.append(result.retx_rate)
            t += result.duration_ms + 6000.0
        assert rates[0] >= max(rates[1:])
