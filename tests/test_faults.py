"""Seeded fault injection: spec validation, determinism, scoring, facade.

The contract under test (docs/FAULTS.md):

* a :class:`FaultSpec` JSON-round-trips and rejects malformed events;
* the injector is a pure overlay — an empty spec reproduces the
  un-faulted run exactly, and the same seed + spec produce
  record-identical telemetry (and a byte-identical metrics document) for
  any worker count;
* ``score_fault_localization`` grades the localizer against the stamped
  ground truth, with recall >= 0.8 on the canned CDN-degradation spec;
* :func:`repro.api.run` is the one facade over every execution shape.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunResult, run
from repro.cli import main as cli_main
from repro.core.faultscore import (
    EXPECTED_BOTTLENECK,
    parse_fault_labels,
    score_fault_localization,
)
from repro.core.localization import Bottleneck
from repro.faults import FaultEvent, FaultInjector, FaultSpec, merge_labels
from repro.simulation.config import SimulationConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
CDN_SPEC = REPO_ROOT / "examples" / "fault_cdn_degradation.json"
ISP_SPEC = REPO_ROOT / "examples" / "fault_isp_incident.json"
CLIENT_SPEC = REPO_ROOT / "examples" / "fault_client_regression.json"


def _config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_sessions=150,
        warmup_sessions=100,
        seed=11,
        warm_first_chunks=True,
        prefetch_after_miss=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _mixed_spec() -> FaultSpec:
    return FaultSpec(
        name="mixed",
        events=(
            FaultEvent("deg", "server-degraded", 0.0, 1e12, 8.0, server_fraction=0.5),
            FaultEvent("lat", "network-latency", 0.0, 1e12, 5.0, orgs=("Comcast",)),
            FaultEvent("rend", "client-render", 0.0, 1e12, 0.5, platforms=("Windows",)),
        ),
    )


class TestFaultSpec:
    def test_json_round_trip(self, tmp_path):
        spec = _mixed_spec()
        path = spec.save(tmp_path / "spec.json")
        loaded = FaultSpec.load(path)
        assert loaded == spec

    def test_canned_specs_load(self):
        for path in (CDN_SPEC, ISP_SPEC, CLIENT_SPEC):
            spec = FaultSpec.load(path)
            assert spec.events, path

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown fault_class"):
            FaultEvent("x", "disk-on-fire", 0.0, 10.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="end_ms"):
            FaultEvent("x", "server-degraded", 10.0, 10.0)

    def test_rejects_bad_loss_magnitude(self):
        with pytest.raises(ValueError, match="network-loss"):
            FaultEvent("x", "network-loss", 0.0, 10.0, magnitude=1.5)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate fault_id"):
            FaultSpec(
                events=(
                    FaultEvent("x", "server-degraded", 0.0, 10.0),
                    FaultEvent("x", "server-overload", 0.0, 10.0, magnitude=5.0),
                )
            )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FaultSpec.load(tmp_path / "nope.json")

    def test_fraction_targeting_is_deterministic_and_partial(self):
        event = FaultEvent(
            "slice", "server-degraded", 0.0, 10.0, 5.0, server_fraction=0.5
        )
        servers = [f"srv-{i:03d}" for i in range(200)]
        struck = [s for s in servers if event.targets_server(s)]
        assert struck == [s for s in servers if event.targets_server(s)]
        assert 0 < len(struck) < len(servers)


class TestInjector:
    def test_inactive_outside_window(self):
        spec = FaultSpec(
            events=(FaultEvent("d", "server-degraded", 100.0, 200.0, 8.0),)
        )
        injector = FaultInjector(spec)
        assert injector.server_state("srv-000", 50.0) is None
        assert injector.server_state("srv-000", 200.0) is None
        state = injector.server_state("srv-000", 150.0)
        assert state is not None and state.latency_mult == 8.0
        assert state.labels == ("server-degraded:d",)

    def test_layers_do_not_cross(self):
        injector = FaultInjector(_mixed_spec())
        assert injector.server_state("srv-000", 1.0) is None or True  # fraction
        assert injector.path_state("Verizon", "p", 1.0) is None
        assert injector.render_state("Mac OS X", 1.0) is None
        state = injector.path_state("Comcast", "p", 1.0)
        assert state is not None and state.rtt_mult == 5.0

    def test_path_probe_none_when_unreachable(self):
        injector = FaultInjector(_mixed_spec())
        assert injector.path_probe("Verizon", "p") is None
        probe = injector.path_probe("Comcast", "p")
        assert probe is not None and probe(1.0).rtt_mult == 5.0

    def test_merge_labels_sorts_and_dedupes(self):
        assert merge_labels(("b:2", "a:1"), ("b:2",)) == "a:1,b:2"
        assert merge_labels((), ()) == ""
        assert parse_fault_labels("a:1,b:2") == [("a", "1"), ("b", "2")]


class TestConfigValidation:
    def test_bad_mapping_strategy(self):
        with pytest.raises(ValueError, match="mapping_strategy"):
            SimulationConfig(mapping_strategy="teleport")

    def test_bad_abr_name(self):
        with pytest.raises(ValueError, match="abr_name"):
            SimulationConfig(abr_name="psychic")

    def test_bad_shard_by(self):
        with pytest.raises(ValueError, match="shard_by"):
            SimulationConfig(shard_by="moon-phase")

    def test_bad_faults_type(self):
        with pytest.raises(TypeError, match="faults"):
            SimulationConfig(faults={"events": []})


class TestFaultDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run(_config(), faults=_mixed_spec())

    @pytest.fixture(scope="class")
    def sharded(self):
        return run(_config(workers=4), faults=_mixed_spec())

    def test_sharded_records_equal_serial(self, serial, sharded):
        assert sharded.dataset.sorted() == serial.dataset.sorted()

    def test_metrics_document_byte_identical(self, serial, sharded):
        doc_a = json.dumps(serial.metrics_document(), sort_keys=True)
        doc_b = json.dumps(sharded.metrics_document(), sort_keys=True)
        assert doc_a == doc_b

    def test_fault_counters_active(self, serial):
        counters = serial.metrics.snapshot()["counters"]
        assert counters["faults.labeled_chunks_total"] > 0
        assert counters["faults.server_requests_total"] > 0
        assert counters["faults.network_chunks_total"] > 0
        assert counters["faults.render_chunks_total"] > 0

    def test_labels_stamped_and_parseable(self, serial):
        labeled = [
            c
            for c in serial.dataset.join_chunks()
            if c.truth is not None and c.truth.fault_labels
        ]
        assert labeled
        for chunk in labeled[:50]:
            for fault_class, fault_id in parse_fault_labels(chunk.truth.fault_labels):
                assert fault_class in EXPECTED_BOTTLENECK
                assert fault_id

    def test_empty_spec_reproduces_unfaulted_run(self):
        plain = run(_config())
        empty = run(_config(), faults=FaultSpec(events=()))
        assert empty.dataset.sorted() == plain.dataset.sorted()


class TestFaultScore:
    @pytest.fixture(scope="class")
    def cdn_report(self):
        result = run(_config(n_sessions=200), faults=FaultSpec.load(CDN_SPEC))
        return score_fault_localization(result.dataset)

    def test_cdn_degradation_recall(self, cdn_report):
        score = cdn_report.classes["server-degraded"]
        assert score.labeled > 100
        assert score.recall >= 0.8

    def test_report_counts_consistent(self, cdn_report):
        assert cdn_report.n_chunks >= cdn_report.n_labeled
        assert cdn_report.n_unscored == 0

    def test_confusion_matrix_rows(self, cdn_report):
        assert "server-degraded" in cdn_report.confusion
        total = sum(cdn_report.confusion["server-degraded"].values())
        assert total == cdn_report.classes["server-degraded"].labeled

    def test_format_report_mentions_recall(self, cdn_report):
        text = cdn_report.format_report()
        assert "recall" in text and "server-degraded" in text

    def test_expected_mapping_covers_all_classes(self):
        from repro.faults.spec import FAULT_CLASSES

        assert set(EXPECTED_BOTTLENECK) == set(FAULT_CLASSES)
        for verdicts in EXPECTED_BOTTLENECK.values():
            assert verdicts and all(isinstance(v, Bottleneck) for v in verdicts)

    def test_unlabeled_dataset_scores_clean(self):
        result = run(_config())
        report = score_fault_localization(result.dataset)
        assert report.n_labeled == 0
        assert report.classes == {}


class TestRunFacade:
    def test_rejects_config_and_periods(self):
        from repro.simulation.parallel import PeriodSpec

        with pytest.raises(ValueError, match="not both"):
            run(_config(), periods=[PeriodSpec(config=_config())])

    def test_default_config(self):
        result = run(SimulationConfig(n_sessions=20, warmup_sessions=10, seed=3))
        assert isinstance(result, RunResult)
        assert result.dataset.n_sessions == 20
        assert result.simulator is not None
        assert result.config.n_sessions == 20

    def test_faults_accepts_path_and_spec(self):
        by_path = run(_config(n_sessions=40), faults=str(CDN_SPEC))
        by_spec = run(_config(n_sessions=40), faults=FaultSpec.load(CDN_SPEC))
        assert by_path.dataset.sorted() == by_spec.dataset.sorted()

    def test_multi_period_dataset_property_raises(self):
        from repro.simulation.parallel import PeriodSpec

        result = run(
            periods=[
                PeriodSpec(config=_config(n_sessions=20), label="a"),
                PeriodSpec(
                    config=_config(n_sessions=20, seed=12),
                    label="b",
                    carry_fleet=True,
                ),
            ]
        )
        with pytest.raises(ValueError, match="period"):
            _ = result.dataset
        assert result.period("a").n_sessions == 20
        with pytest.raises(KeyError):
            result.period("zzz")

    def test_save_writes_dataset_and_manifest(self, tmp_path):
        result = run(_config(n_sessions=30))
        out = result.save(tmp_path / "trace")
        assert (out / "manifest.json").is_file()
        from repro.telemetry.io import load_dataset

        assert load_dataset(out).n_sessions == 30


class TestCli:
    def test_simulate_with_faults_and_faultscore(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = cli_main(
            [
                "simulate",
                "--sessions", "60",
                "--warmup", "40",
                "--seed", "5",
                "--out", str(out),
                "--faults", str(CDN_SPEC),
            ]
        )
        assert code == 0
        code = cli_main(["faultscore", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "server-degraded" in text
        assert "Confusion matrix" in text

    def test_faultscore_exits_nonzero_without_labels(self, tmp_path, capsys):
        out = tmp_path / "plain"
        assert cli_main(
            [
                "simulate",
                "--sessions", "20",
                "--warmup", "10",
                "--seed", "5",
                "--out", str(out),
            ]
        ) == 0
        assert cli_main(["faultscore", str(out)]) == 1

    def test_scenario_command_unknown_name(self, capsys):
        assert cli_main(["scenario", "no-such-thing"]) == 2
