"""Fast edge-case tests for paths not covered by the main module suites."""

import numpy as np
import pytest

from helpers import cdn_chunk, make_dataset, player_chunk, tcp_snap
from repro.analysis.stats import empirical_ccdf, empirical_cdf
from repro.cdn.cache import CacheStatus, TwoLevelCache
from repro.cdn.mapping import TrafficEngineering
from repro.cdn.pop import build_default_deployment
from repro.client.downloadstack import DownloadStackEffect
from repro.core import netdiag, popularity
from repro.core.proxy_filter import filter_proxies
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import simulate
from repro.telemetry.dataset import Dataset
from repro.workload.catalog import Video
from repro.workload.geo import GeoPoint


class TestCdfEdges:
    def test_ccdf_prob_at_below_min(self):
        ccdf = empirical_ccdf([5.0, 6.0])
        assert ccdf.prob_at(1.0) == 1.0

    def test_cdf_with_duplicates(self):
        cdf = empirical_cdf([2.0, 2.0, 2.0])
        assert cdf.prob_at(2.0) == 1.0
        assert cdf.prob_at(1.9) == 0.0

    def test_value_at_single_sample(self):
        cdf = empirical_cdf([7.0])
        assert cdf.value_at(0.0) == cdf.value_at(1.0) == 7.0


class TestCacheEdges:
    def test_promotion_preserves_disk_copy(self):
        cache = TwoLevelCache(100, 1000)
        cache.admit("a", 10)
        # push "a" out of RAM
        for key in range(20):
            cache.admit(key, 10)
        assert cache.lookup("a", 10) is CacheStatus.HIT_DISK
        # promotion must not remove the disk copy
        assert cache.disk.peek("a")

    def test_object_equal_to_ram_capacity_admitted(self):
        cache = TwoLevelCache(100, 1000)
        cache.admit("big", 100)
        assert cache.lookup("big", 100).is_hit

    def test_gdsize_two_level_workload(self):
        cache = TwoLevelCache(50, 500, policy_name="gdsize")
        for i in range(100):
            key = i % 20
            if not cache.lookup(key, 10).is_hit:
                cache.admit(key, 10)
        assert cache.ram.used_bytes <= 50
        assert cache.disk.used_bytes <= 500


class TestMappingEdges:
    @pytest.fixture(scope="class")
    def te(self):
        deployment = build_default_deployment(total_servers=20)
        engineering = TrafficEngineering(
            deployment=deployment, strategy="popularity-partitioned"
        )
        engineering.configure_catalog(100)
        return engineering

    def test_partition_cutoff_from_catalog(self, te):
        assert te.n_popular_titles == 10

    def test_rank_on_boundary_not_partitioned(self, te):
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        # rank 10 is the first *unpopular* title under a 10-title cutoff
        servers = {
            te.assign(client, 10, 10, f"s{i}").server_id for i in range(10)
        }
        assert len(servers) == 1

    def test_unconfigured_partition_behaves_cache_focused(self):
        deployment = build_default_deployment(total_servers=20)
        te = TrafficEngineering(
            deployment=deployment, strategy="popularity-partitioned"
        )
        client = GeoPoint(lat=40.7, lon=-74.0, city="x", country="US")
        servers = {te.assign(client, 0, 0, f"s{i}").server_id for i in range(10)}
        assert len(servers) == 1  # no cutoff configured -> nothing is "popular"


class TestVideoEdges:
    def test_exact_multiple_duration_has_no_short_chunk(self):
        video = Video(video_id=0, rank=0, duration_ms=12_000.0)
        assert video.n_chunks == 2
        assert video.chunk_duration_ms(1) == 6000.0

    def test_sub_chunk_video(self):
        video = Video(video_id=0, rank=0, duration_ms=2_500.0)
        assert video.n_chunks == 1
        assert video.chunk_duration_ms(0) == 2_500.0


class TestDownloadStackEffect:
    def test_total_is_first_byte_delay(self):
        effect = DownloadStackEffect(
            first_byte_delay_ms=123.0, last_byte_shift_ms=0.0, transient=False
        )
        assert effect.total_ms == 123.0


class TestNetdiagEdges:
    def test_org_cv_custom_threshold(self):
        dataset = make_dataset(3)
        dataset.tcp_snapshots = [
            tcp_snap(chunk=0, t=500.0, srtt_ms=10.0),
            tcp_snap(chunk=1, t=1000.0, srtt_ms=14.0),
            tcp_snap(chunk=2, t=1500.0, srtt_ms=10.0),
        ]
        strict = netdiag.org_cv_table(dataset, min_sessions=1, cv_threshold=0.05)
        lax = netdiag.org_cv_table(dataset, min_sessions=1, cv_threshold=5.0)
        assert strict[0].n_high_cv == 1
        assert lax[0].n_high_cv == 0

    def test_path_cv_requires_min_sessions(self):
        from helpers import cdn_session, player_session

        dataset = make_dataset(2)
        # a second session from the same /24 and PoP
        dataset.player_sessions.append(player_session(session="s2", client_ip="10.0.0.9"))
        dataset.cdn_sessions.append(cdn_session(session="s2", client_ip="10.0.0.9"))
        dataset.player_chunks.append(player_chunk(session="s2", chunk=0))
        dataset.cdn_chunks.append(cdn_chunk(session="s2", chunk=0))
        dataset.tcp_snapshots.append(tcp_snap(session="s2", chunk=0, srtt_ms=90.0))
        assert netdiag.path_cv_values(dataset, min_sessions=3) == []
        assert len(netdiag.path_cv_values(dataset, min_sessions=2)) == 1

    def test_per_chunk_retx_respects_max_id(self):
        dataset = make_dataset(3)
        rows = netdiag.per_chunk_retx_rates(dataset, max_chunk_id=1)
        assert max(cid for cid, _ in rows) <= 1


class TestPopularityEdges:
    def test_custom_rank_points(self):
        dataset = make_dataset(2)
        rows = popularity.rank_tail_miss_percentage(dataset, rank_points=[0])
        assert len(rows) == 1
        assert rows[0][0] == 0

    def test_rank_points_beyond_catalog_skipped(self):
        dataset = make_dataset(2)
        rows = popularity.rank_tail_miss_percentage(dataset, rank_points=[0, 99])
        assert [x for x, _ in rows] == [0]

    def test_empty_dataset(self):
        assert popularity.rank_tail_miss_percentage(Dataset()) == []
        assert popularity.video_ranks(Dataset()) == {}


class TestProxyFilterEdges:
    def test_mega_ip_needs_both_volume_and_impossibility(self):
        # many sessions from one IP, but each watches little: kept
        dataset = Dataset()
        from helpers import cdn_session, player_session

        for i in range(30):
            sid = f"s{i}"
            dataset.player_sessions.append(
                player_session(session=sid, client_ip="203.0.113.9", start_ms=i * 1000.0)
            )
            dataset.cdn_sessions.append(
                cdn_session(session=sid, client_ip="203.0.113.9")
            )
            dataset.player_chunks.append(player_chunk(session=sid, chunk=0))
            dataset.cdn_chunks.append(cdn_chunk(session=sid, chunk=0))
        filtered, report = filter_proxies(dataset)
        assert not report.mega_ips
        assert filtered.n_sessions == 30


class TestSimulationEdges:
    def test_single_session_simulation(self):
        result = simulate(SimulationConfig(n_sessions=1, seed=99))
        assert result.dataset.n_sessions == 1
        session = result.dataset.sessions()[0]
        assert session.n_chunks >= 1
        assert session.chunks[0].tcp  # snapshots present even for one chunk

    def test_prefetch_depth_zero_is_noop(self):
        base = SimulationConfig(
            n_sessions=100, seed=12, prefetch_after_miss=True, prefetch_depth=0
        )
        with_prefetch = simulate(base)
        without = simulate(base.with_overrides(prefetch_after_miss=False))
        a = [c.cache_status for c in with_prefetch.dataset.cdn_chunks]
        b = [c.cache_status for c in without.dataset.cdn_chunks]
        assert a == b

    def test_buffer_abr_sessions_start_low(self):
        result = simulate(SimulationConfig(n_sessions=60, seed=14, abr_name="buffer"))
        first_bitrates = {
            c.bitrate_kbps
            for c in result.dataset.player_chunks
            if c.chunk_id == 0
        }
        assert first_bitrates == {235.0}
