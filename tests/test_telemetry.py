"""Unit tests for telemetry records, dataset join, collector, and IO."""

import pytest

from helpers import (
    cdn_chunk,
    cdn_session,
    make_dataset,
    player_chunk,
    player_session,
    tcp_snap,
)
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.dataset import Dataset
from repro.telemetry.io import load_dataset, save_dataset
from repro.telemetry.records import ChunkGroundTruth


class TestRecords:
    def test_player_chunk_derived_metrics(self):
        record = player_chunk(dfb_ms=500.0, dlb_ms=1500.0)
        assert record.download_ms == 2000.0
        assert record.download_rate == pytest.approx(3.0)
        assert record.dropped_fraction == 0.0

    def test_download_rate_handles_zero(self):
        record = player_chunk(dfb_ms=0.0, dlb_ms=0.0)
        assert record.download_rate == float("inf")

    def test_cdn_chunk_decomposition(self):
        record = cdn_chunk(d_wait_ms=1.0, d_open_ms=2.0, d_read_ms=3.0, d_be_ms=10.0)
        assert record.d_cdn_ms == 6.0
        assert record.total_server_ms == 16.0
        assert record.is_hit

    def test_miss_flag(self):
        assert not cdn_chunk(cache_status="miss").is_hit

    def test_tcp_throughput_eq3(self):
        snap = tcp_snap(cwnd_segments=100, srtt_ms=100.0, mss=1460)
        # 100 * 1460 bytes over 100 ms = 1.46 MB/0.1 s = 11.68 Mbps
        assert snap.throughput_kbps == pytest.approx(11_680.0)

    def test_tcp_throughput_zero_srtt(self):
        assert tcp_snap(srtt_ms=0.0).throughput_kbps == 0.0


class TestDatasetJoin:
    def test_join_matches_pairs(self):
        dataset = make_dataset(3)
        joined = dataset.join_chunks()
        assert len(joined) == 3
        assert all(j.player.chunk_id == j.cdn.chunk_id for j in joined)

    def test_join_drops_unmatched(self):
        dataset = make_dataset(2)
        dataset.player_chunks.append(player_chunk(chunk=99))
        assert len(dataset.join_chunks()) == 2

    def test_tcp_snapshots_attached_sorted(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots.append(tcp_snap(chunk=0, t=100.0))
        joined = dataset.join_chunks()[0]
        times = [s.t_ms for s in joined.tcp]
        assert times == sorted(times)
        assert joined.first_tcp.t_ms == 100.0

    def test_srtt_samples_skip_zero(self):
        dataset = make_dataset(1)
        dataset.tcp_snapshots.append(tcp_snap(chunk=0, t=10.0, srtt_ms=0.0))
        joined = dataset.join_chunks()[0]
        assert all(s > 0 for s in joined.srtt_samples)

    def test_sessions_grouping(self):
        dataset = make_dataset(3)
        sessions = dataset.sessions()
        assert len(sessions) == 1
        assert sessions[0].n_chunks == 3
        assert [c.chunk_id for c in sessions[0].chunks] == [0, 1, 2]

    def test_sessions_missing_cdn_side_dropped(self):
        dataset = make_dataset(1)
        dataset.player_sessions.append(player_session(session="orphan"))
        assert len(dataset.sessions()) == 1

    def test_session_view_metrics(self):
        dataset = make_dataset(2)
        view = dataset.sessions()[0]
        assert view.avg_bitrate_kbps == pytest.approx(1050.0)
        assert view.watched_media_ms == 12_000.0
        assert view.rebuffer_rate == 0.0
        assert view.startup_delay_ms == pytest.approx(1000.0)

    def test_session_retx_rate_from_counters(self):
        dataset = make_dataset(2)
        dataset.tcp_snapshots = [
            tcp_snap(chunk=0, t=500.0, retx_total=0),
            tcp_snap(chunk=1, t=1000.0, retx_total=54),
        ]
        view = dataset.sessions()[0]
        # 54 retx over 2 * 787500 / 1460 ~ 1078 segments -> ~5%
        assert view.session_retx_rate == pytest.approx(0.05, abs=0.01)
        assert view.had_loss

    def test_chunk_retx_deltas(self):
        dataset = make_dataset(3)
        dataset.tcp_snapshots = [
            tcp_snap(chunk=0, t=500.0, retx_total=10),
            tcp_snap(chunk=1, t=1000.0, retx_total=10),
            tcp_snap(chunk=2, t=1500.0, retx_total=15),
        ]
        view = dataset.sessions()[0]
        assert view.chunk_retx_counts() == [(0, 10), (1, 0), (2, 5)]

    def test_startup_none_when_first_chunk_missing(self):
        dataset = make_dataset(2)
        dataset.player_chunks = dataset.player_chunks[1:]
        dataset.cdn_chunks = dataset.cdn_chunks[1:]
        assert dataset.sessions()[0].startup_delay_ms is None

    def test_filter_sessions(self):
        dataset = make_dataset(2)
        empty = dataset.filter_sessions([])
        assert empty.n_sessions == 0 and empty.n_chunks == 0
        same = dataset.filter_sessions(["s1"])
        assert same.n_sessions == 1 and same.n_chunks == 2

    def test_merge(self):
        d1 = make_dataset(1)
        d2 = Dataset(
            player_chunks=[player_chunk(session="s2")],
            cdn_chunks=[cdn_chunk(session="s2")],
            player_sessions=[player_session(session="s2")],
            cdn_sessions=[cdn_session(session="s2")],
        )
        merged = d1.merge(d2)
        assert merged.n_sessions == 2
        assert len(merged.sessions()) == 2


class TestCollector:
    def test_collects_all_record_types(self):
        collector = TelemetryCollector()
        collector.add_player_session(player_session())
        collector.add_cdn_session(cdn_session())
        collector.add_player_chunk(player_chunk())
        collector.add_cdn_chunk(cdn_chunk())
        collector.add_tcp_snapshot(tcp_snap())
        collector.add_ground_truth(
            ChunkGroundTruth("s1", 0, 5.0, 60.0, False, 100, 0, 0.0, 900.0)
        )
        dataset = collector.dataset()
        assert dataset.n_sessions == 1
        assert dataset.n_chunks == 1
        assert len(dataset.ground_truth) == 1

    def test_ground_truth_opt_out(self):
        collector = TelemetryCollector(record_ground_truth=False)
        collector.add_ground_truth(
            ChunkGroundTruth("s1", 0, 5.0, 60.0, False, 100, 0, 0.0, 900.0)
        )
        assert collector.dataset().ground_truth == []

    def test_dataset_snapshot_is_copy(self):
        collector = TelemetryCollector()
        collector.add_player_chunk(player_chunk())
        dataset = collector.dataset()
        collector.add_player_chunk(player_chunk(chunk=1))
        assert dataset.n_chunks == 1


class TestIo:
    def test_round_trip(self, tmp_path):
        dataset = make_dataset(3)
        dataset.ground_truth.append(
            ChunkGroundTruth("s1", 0, 5.0, 60.0, False, 100, 2, 0.1, 900.0)
        )
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.player_chunks == dataset.player_chunks
        assert loaded.cdn_chunks == dataset.cdn_chunks
        assert loaded.tcp_snapshots == dataset.tcp_snapshots
        assert loaded.player_sessions == dataset.player_sessions
        assert loaded.cdn_sessions == dataset.cdn_sessions
        assert loaded.ground_truth == dataset.ground_truth

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_load_rejects_unknown_fields(self, tmp_path):
        directory = save_dataset(make_dataset(1), tmp_path / "ds")
        target = directory / "player_chunks.jsonl"
        target.write_text('{"bogus_field": 1}\n')
        with pytest.raises(ValueError):
            load_dataset(directory)

    def test_load_rejects_bad_json(self, tmp_path):
        directory = save_dataset(make_dataset(1), tmp_path / "ds")
        (directory / "cdn_chunks.jsonl").write_text("not json\n")
        with pytest.raises(ValueError):
            load_dataset(directory)

    def test_empty_dataset_round_trip(self, tmp_path):
        save_dataset(Dataset(), tmp_path / "empty")
        loaded = load_dataset(tmp_path / "empty")
        assert loaded.n_sessions == 0
