"""Docs-sync lint: the curated docs must mirror the code contracts.

Three guarantees, all bidirectional:

* every metric/span registered in ``repro.obs`` is documented in
  docs/OBSERVABILITY.md, and every name documented there is registered —
  the contract cannot drift silently in either direction;
* every scenario-DSL grammar name (workload shapes, spec fields,
  transform keywords — ``repro.sweep.spec``) is documented in
  docs/SCENARIOS.md, and every name documented there exists in the
  grammar;
* every columnar telemetry field (name **and** fixed-width dtype —
  ``repro.telemetry.columnar.COLUMN_SCHEMAS``) is documented in
  docs/TELEMETRY.md, and every documented field/dtype matches the code,
  because string widths are part of the spill-format contract;
* every intra-repo markdown link in the curated docs resolves to a real
  file, so the cross-linked doc set (README → docs/* → DESIGN) never rots.

Run by the CI ``docs`` job and by the tier-1 suite.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Set, Tuple

from repro.obs import METRIC_SPECS, SPAN_SPECS, TRACE_EVENT_SPECS
from repro.telemetry.columnar import COLUMN_SCHEMAS, SPILL_KINDS, dtype_token
from repro.sweep import (
    AXIS_FIELDS,
    AXIS_VALUE_FIELDS,
    PERIOD_FIELDS,
    SCENARIO_FIELDS,
    SWEEP_FIELDS,
    TRANSFORM_KEYS,
    WORKLOAD_SHAPES,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OBSERVABILITY_MD = REPO_ROOT / "docs" / "OBSERVABILITY.md"
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"
TELEMETRY_MD = REPO_ROOT / "docs" / "TELEMETRY.md"

#: markdown files whose intra-repo links must resolve (curated docs; the
#: generated reference dumps PAPERS.md / SNIPPETS.md are out of scope)
LINKED_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/FAULTS.md",
    "docs/OBSERVABILITY.md",
    "docs/PAPER_MAPPING.md",
    "docs/PARALLEL.md",
    "docs/PERFORMANCE.md",
    "docs/SCENARIOS.md",
    "docs/TELEMETRY.md",
]

#: a contract table row: the first cell is a backticked dotted name
_CONTRACT_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|")
_MARKDOWN_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def documented_names() -> Set[str]:
    """Names declared in OBSERVABILITY.md's contract tables."""
    names: Set[str] = set()
    for line in OBSERVABILITY_MD.read_text(encoding="utf-8").splitlines():
        match = _CONTRACT_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


class TestMetricsContractSync:
    def test_observability_doc_exists(self):
        assert OBSERVABILITY_MD.is_file()

    def test_every_registered_name_is_documented(self):
        registered = set(METRIC_SPECS) | set(SPAN_SPECS) | set(TRACE_EVENT_SPECS)
        missing = sorted(registered - documented_names())
        assert not missing, (
            "metrics/spans/trace events registered in repro.obs but "
            f"undocumented in docs/OBSERVABILITY.md: {missing} — add a "
            "contract-table row for each"
        )

    def test_every_documented_name_is_registered(self):
        registered = set(METRIC_SPECS) | set(SPAN_SPECS) | set(TRACE_EVENT_SPECS)
        stale = sorted(documented_names() - registered)
        assert not stale, (
            "names documented in docs/OBSERVABILITY.md but not registered "
            f"in repro.obs: {stale} — remove the row or register the spec"
        )

    def test_contract_is_nontrivial(self):
        # guard against the lint trivially passing on an empty doc
        assert len(documented_names()) >= 35

    def test_trace_event_phases_documented(self):
        # every trace-event row must state its phase (span/instant) so the
        # Chrome-export semantics stay readable from the doc alone
        text = OBSERVABILITY_MD.read_text(encoding="utf-8")
        for name, spec in TRACE_EVENT_SPECS.items():
            row = next(
                (
                    line
                    for line in text.splitlines()
                    if _CONTRACT_ROW.match(line)
                    and _CONTRACT_ROW.match(line).group(1) == name
                ),
                None,
            )
            assert row is not None, name
            assert f"| {spec.phase} |" in row, (
                f"{name}: documented row does not state its phase "
                f"{spec.phase!r}: {row!r}"
            )

    def test_units_documented_for_all_metrics(self):
        # every metric row must carry the spec's unit in its line
        text = OBSERVABILITY_MD.read_text(encoding="utf-8")
        for name, spec in METRIC_SPECS.items():
            row = next(
                (
                    line
                    for line in text.splitlines()
                    if _CONTRACT_ROW.match(line)
                    and _CONTRACT_ROW.match(line).group(1) == name
                ),
                None,
            )
            assert row is not None, name
            assert f"| {spec.unit} |" in row, (
                f"{name}: documented row does not state its unit "
                f"{spec.unit!r}: {row!r}"
            )


# scenario-DSL names may contain hyphens (shape and scenario names),
# unlike the dotted metric names above
_DSL_CONTRACT_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_.-]*)`\s*\|")


def grammar_names() -> Set[str]:
    """Every name the scenario-DSL grammar declares (repro.sweep.spec)."""
    return (
        set(WORKLOAD_SHAPES)
        | set(SCENARIO_FIELDS)
        | set(PERIOD_FIELDS)
        | set(SWEEP_FIELDS)
        | set(AXIS_FIELDS)
        | set(AXIS_VALUE_FIELDS)
        | set(TRANSFORM_KEYS)
    )


def scenario_documented_names() -> Set[str]:
    """Names declared in SCENARIOS.md's grammar tables."""
    names: Set[str] = set()
    for line in SCENARIOS_MD.read_text(encoding="utf-8").splitlines():
        match = _DSL_CONTRACT_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


class TestScenarioGrammarSync:
    def test_scenarios_doc_exists(self):
        assert SCENARIOS_MD.is_file()

    def test_every_grammar_name_is_documented(self):
        missing = sorted(grammar_names() - scenario_documented_names())
        assert not missing, (
            "scenario-DSL names declared in repro.sweep.spec but "
            f"undocumented in docs/SCENARIOS.md: {missing} — add a "
            "grammar-table row for each"
        )

    def test_every_documented_name_is_in_the_grammar(self):
        stale = sorted(scenario_documented_names() - grammar_names())
        assert not stale, (
            "names documented in docs/SCENARIOS.md but absent from the "
            f"repro.sweep.spec grammar: {stale} — remove the row or add "
            "the shape/field"
        )

    def test_grammar_is_nontrivial(self):
        # guard against the lint trivially passing on an empty doc
        assert len(scenario_documented_names()) >= 20

    def test_canned_scenarios_documented(self):
        from repro.sweep import CANNED_SCENARIOS

        text = SCENARIOS_MD.read_text(encoding="utf-8")
        for name in CANNED_SCENARIOS:
            assert name in text, f"canned scenario {name!r} not mentioned"


# a columnar-schema table row in TELEMETRY.md: `field` | `dtype` | ...
_SCHEMA_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`\s*\|\s*`([A-Za-z][0-9]+)`\s*\|")
_SCHEMA_HEADING = re.compile(r"^###\s+`([a-z_]+)`")
_COUNTER_MENTION = re.compile(r"`(telemetry\.[a-z0-9_.]+)`")


def telemetry_documented_schemas() -> dict:
    """kind -> [(field, dtype token), ...] parsed from TELEMETRY.md."""
    schemas: dict = {}
    rows: List[Tuple[str, str]] = []
    current = None
    for line in TELEMETRY_MD.read_text(encoding="utf-8").splitlines():
        heading = _SCHEMA_HEADING.match(line)
        if heading:
            current = heading.group(1)
            rows = schemas.setdefault(current, [])
            continue
        if line.startswith("## "):  # left the "Columnar layout" sections
            current = None
            continue
        if current is not None:
            row = _SCHEMA_ROW.match(line)
            if row:
                rows.append((row.group(1), row.group(2)))
    return schemas


class TestTelemetrySchemaSync:
    def test_telemetry_doc_exists(self):
        assert TELEMETRY_MD.is_file()

    def test_every_kind_has_a_schema_table(self):
        documented = set(telemetry_documented_schemas())
        assert documented == set(SPILL_KINDS), (
            "docs/TELEMETRY.md schema sections do not match the record "
            f"kinds in COLUMN_SCHEMAS: doc has {sorted(documented)}, "
            f"code has {sorted(SPILL_KINDS)}"
        )

    def test_fields_and_dtypes_match_both_directions(self):
        # field order, names, and fixed widths are all contract: a column
        # added/removed/resized in code must be edited here too (and the
        # spill format version bumped — docs/TELEMETRY.md).
        documented = telemetry_documented_schemas()
        for kind in SPILL_KINDS:
            in_code = [
                (name, dtype_token(kind, name))
                for name in COLUMN_SCHEMAS[kind].field_names
            ]
            assert documented.get(kind) == in_code, (
                f"docs/TELEMETRY.md `{kind}` table out of sync with "
                f"COLUMN_SCHEMAS: doc {documented.get(kind)} != code {in_code}"
            )

    def test_row_bytes_documented(self):
        # each section heading states the packed row size, part of the
        # RSS budget model
        text = TELEMETRY_MD.read_text(encoding="utf-8")
        for kind in SPILL_KINDS:
            stated = f"`{kind}`"
            line = next(
                ln for ln in text.splitlines()
                if ln.startswith("### ") and stated in ln
            )
            assert f"{COLUMN_SCHEMAS[kind].row_bytes} B/row" in line, (
                f"{kind}: heading does not state the packed row size "
                f"{COLUMN_SCHEMAS[kind].row_bytes} B/row: {line!r}"
            )

    def test_spill_counters_documented_and_registered(self):
        # `telemetry.*` names mentioned in TELEMETRY.md must be registered,
        # and every registered telemetry.* metric must be mentioned there
        # (OBSERVABILITY.md coverage is enforced by TestMetricsContractSync)
        text = _CODE_FENCE.sub("", TELEMETRY_MD.read_text(encoding="utf-8"))
        mentioned = set(_COUNTER_MENTION.findall(text))
        registered = {n for n in METRIC_SPECS if n.startswith("telemetry.")}
        assert registered, "expected telemetry.* metrics in the registry"
        assert mentioned == registered, (
            "telemetry.* counters drifted between docs/TELEMETRY.md and "
            f"the registry: doc mentions {sorted(mentioned)}, registry has "
            f"{sorted(registered)}"
        )


def _intra_repo_links(path: Path) -> List[Tuple[str, Path]]:
    """(raw link, resolved target) for each relative link in *path*."""
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    links: List[Tuple[str, Path]] = []
    for raw in _MARKDOWN_LINK.findall(text):
        if raw.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = raw.split("#", 1)[0]
        if not target:
            continue
        links.append((raw, (path.parent / target).resolve()))
    return links


class TestMarkdownLinks:
    def test_curated_docs_exist(self):
        for name in LINKED_DOCS:
            assert (REPO_ROOT / name).is_file(), f"missing curated doc {name}"

    def test_all_intra_repo_links_resolve(self):
        broken: List[str] = []
        for name in LINKED_DOCS:
            path = REPO_ROOT / name
            for raw, target in _intra_repo_links(path):
                if not target.exists():
                    broken.append(f"{name}: ({raw}) -> {target}")
        assert not broken, "broken intra-repo markdown links:\n" + "\n".join(broken)

    def test_architecture_is_cross_linked(self):
        # satellite requirement: ARCHITECTURE.md reachable from README + DESIGN
        for source in ("README.md", "DESIGN.md"):
            text = (REPO_ROOT / source).read_text(encoding="utf-8")
            assert "ARCHITECTURE.md" in text, (
                f"{source} does not link docs/ARCHITECTURE.md"
            )

    def test_performance_doc_is_cross_linked(self):
        # PERFORMANCE.md reachable from README and the architecture map
        for source in ("README.md", "docs/ARCHITECTURE.md"):
            text = (REPO_ROOT / source).read_text(encoding="utf-8")
            assert "PERFORMANCE.md" in text, (
                f"{source} does not link docs/PERFORMANCE.md"
            )


class TestEngineContractSync:
    """Engine selection is user-facing API: names must stay documented."""

    def test_every_engine_name_documented(self):
        from repro.engine import ENGINE_NAMES

        performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text(
            encoding="utf-8"
        )
        for name in ENGINE_NAMES:
            assert f'"{name}"' in performance or f"`{name}`" in performance, (
                f"engine {name!r} not documented in docs/PERFORMANCE.md"
            )

    def test_registry_and_module_map_documented(self):
        from repro.engine import ENGINE_NAMES, ENGINE_REGISTRY

        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "`repro.engine`" in architecture, (
            "docs/ARCHITECTURE.md module map lacks a repro.engine entry"
        )
        assert "ENGINE_REGISTRY" in architecture
        # every concrete engine has a registry entry and a module mention
        for name in set(ENGINE_NAMES) - {"auto"}:
            assert name in ENGINE_REGISTRY
            assert f"`{name}`" in architecture

    def test_cli_engine_choices_match(self):
        from repro.cli import build_parser
        from repro.engine import ENGINE_NAMES

        parser = build_parser()
        args = parser.parse_args(["simulate", "--out", "x"])
        assert args.engine == "auto"
        for name in ENGINE_NAMES:
            parsed = parser.parse_args(["simulate", "--out", "x", "--engine", name])
            assert parsed.engine == name


# the "Service mode" section tables: endpoint rows have a `/path` first
# cell; window/incident field rows use JSON-key style (`"field"`) first
# cells — deliberately distinct from the backticked metric names that
# _CONTRACT_ROW lints, so the two contracts cannot collide
_ENDPOINT_ROW = re.compile(r"^\|\s*`(/[a-z]+)`\s*\|")
_JSON_FIELD = re.compile(r'`"([a-z_]+)"`')


def _serve_subsection(title: str) -> List[str]:
    """Lines of one `###` subsection inside the Service mode section."""
    lines: List[str] = []
    in_service = False
    in_subsection = False
    for line in OBSERVABILITY_MD.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            in_service = line.strip() == "## Service mode"
            in_subsection = False
            continue
        if in_service and line.startswith("### "):
            in_subsection = line.strip() == f"### {title}"
            continue
        if in_service and in_subsection:
            lines.append(line)
    return lines


class TestServeContractSync:
    """The live-service HTTP/JSONL plane is user-facing API: the endpoint
    table and the window/incident schema tables in OBSERVABILITY.md must
    mirror repro.serve, both directions."""

    def _documented_endpoints(self) -> Set[str]:
        paths: Set[str] = set()
        for line in _serve_subsection("Endpoints"):
            match = _ENDPOINT_ROW.match(line)
            if match:
                paths.add(match.group(1))
        return paths

    def _documented_fields(self, subsection: str) -> Set[str]:
        fields: Set[str] = set()
        for line in _serve_subsection(subsection):
            if line.startswith("|"):
                first_cell = line.split("|")[1]
                fields.update(_JSON_FIELD.findall(first_cell))
        return fields

    def test_every_endpoint_is_documented(self):
        from repro.serve import SERVE_ENDPOINTS

        missing = sorted(set(SERVE_ENDPOINTS) - self._documented_endpoints())
        assert not missing, (
            f"endpoints served by repro.serve.plane but undocumented in "
            f"docs/OBSERVABILITY.md 'Service mode': {missing}"
        )

    def test_every_documented_endpoint_is_served(self):
        from repro.serve import SERVE_ENDPOINTS

        stale = sorted(self._documented_endpoints() - set(SERVE_ENDPOINTS))
        assert not stale, (
            f"endpoints documented in docs/OBSERVABILITY.md but absent "
            f"from repro.serve.plane.SERVE_ENDPOINTS: {stale}"
        )

    def test_window_fields_documented_both_directions(self):
        from repro.serve import WINDOW_DOC_FIELDS

        documented = self._documented_fields("Window schema")
        assert documented == set(WINDOW_DOC_FIELDS), (
            "window document fields drifted between repro.serve.windows "
            f"and docs/OBSERVABILITY.md: doc has {sorted(documented)}, "
            f"code has {sorted(WINDOW_DOC_FIELDS)}"
        )

    def test_incident_fields_documented_both_directions(self):
        from repro.serve import INCIDENT_DOC_FIELDS

        documented = self._documented_fields("Incident schema")
        assert documented == set(INCIDENT_DOC_FIELDS), (
            "incident document fields drifted between repro.serve.online "
            f"and docs/OBSERVABILITY.md: doc has {sorted(documented)}, "
            f"code has {sorted(INCIDENT_DOC_FIELDS)}"
        )

    def test_serve_module_in_architecture_map(self):
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "`repro.serve`" in architecture, (
            "docs/ARCHITECTURE.md module map lacks a repro.serve row"
        )
        assert "repro watch" in architecture or "`watch`" in architecture
