"""Docs-sync lint: the curated docs must mirror the code contracts.

Three guarantees, all bidirectional:

* every metric/span registered in ``repro.obs`` is documented in
  docs/OBSERVABILITY.md, and every name documented there is registered —
  the contract cannot drift silently in either direction;
* every scenario-DSL grammar name (workload shapes, spec fields,
  transform keywords — ``repro.sweep.spec``) is documented in
  docs/SCENARIOS.md, and every name documented there exists in the
  grammar;
* every intra-repo markdown link in the curated docs resolves to a real
  file, so the cross-linked doc set (README → docs/* → DESIGN) never rots.

Run by the CI ``docs`` job and by the tier-1 suite.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Set, Tuple

from repro.obs import METRIC_SPECS, SPAN_SPECS, TRACE_EVENT_SPECS
from repro.sweep import (
    AXIS_FIELDS,
    AXIS_VALUE_FIELDS,
    PERIOD_FIELDS,
    SCENARIO_FIELDS,
    SWEEP_FIELDS,
    TRANSFORM_KEYS,
    WORKLOAD_SHAPES,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OBSERVABILITY_MD = REPO_ROOT / "docs" / "OBSERVABILITY.md"
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"

#: markdown files whose intra-repo links must resolve (curated docs; the
#: generated reference dumps PAPERS.md / SNIPPETS.md are out of scope)
LINKED_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/FAULTS.md",
    "docs/OBSERVABILITY.md",
    "docs/PAPER_MAPPING.md",
    "docs/PARALLEL.md",
    "docs/PERFORMANCE.md",
    "docs/SCENARIOS.md",
]

#: a contract table row: the first cell is a backticked dotted name
_CONTRACT_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|")
_MARKDOWN_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def documented_names() -> Set[str]:
    """Names declared in OBSERVABILITY.md's contract tables."""
    names: Set[str] = set()
    for line in OBSERVABILITY_MD.read_text(encoding="utf-8").splitlines():
        match = _CONTRACT_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


class TestMetricsContractSync:
    def test_observability_doc_exists(self):
        assert OBSERVABILITY_MD.is_file()

    def test_every_registered_name_is_documented(self):
        registered = set(METRIC_SPECS) | set(SPAN_SPECS) | set(TRACE_EVENT_SPECS)
        missing = sorted(registered - documented_names())
        assert not missing, (
            "metrics/spans/trace events registered in repro.obs but "
            f"undocumented in docs/OBSERVABILITY.md: {missing} — add a "
            "contract-table row for each"
        )

    def test_every_documented_name_is_registered(self):
        registered = set(METRIC_SPECS) | set(SPAN_SPECS) | set(TRACE_EVENT_SPECS)
        stale = sorted(documented_names() - registered)
        assert not stale, (
            "names documented in docs/OBSERVABILITY.md but not registered "
            f"in repro.obs: {stale} — remove the row or register the spec"
        )

    def test_contract_is_nontrivial(self):
        # guard against the lint trivially passing on an empty doc
        assert len(documented_names()) >= 35

    def test_trace_event_phases_documented(self):
        # every trace-event row must state its phase (span/instant) so the
        # Chrome-export semantics stay readable from the doc alone
        text = OBSERVABILITY_MD.read_text(encoding="utf-8")
        for name, spec in TRACE_EVENT_SPECS.items():
            row = next(
                (
                    line
                    for line in text.splitlines()
                    if _CONTRACT_ROW.match(line)
                    and _CONTRACT_ROW.match(line).group(1) == name
                ),
                None,
            )
            assert row is not None, name
            assert f"| {spec.phase} |" in row, (
                f"{name}: documented row does not state its phase "
                f"{spec.phase!r}: {row!r}"
            )

    def test_units_documented_for_all_metrics(self):
        # every metric row must carry the spec's unit in its line
        text = OBSERVABILITY_MD.read_text(encoding="utf-8")
        for name, spec in METRIC_SPECS.items():
            row = next(
                (
                    line
                    for line in text.splitlines()
                    if _CONTRACT_ROW.match(line)
                    and _CONTRACT_ROW.match(line).group(1) == name
                ),
                None,
            )
            assert row is not None, name
            assert f"| {spec.unit} |" in row, (
                f"{name}: documented row does not state its unit "
                f"{spec.unit!r}: {row!r}"
            )


# scenario-DSL names may contain hyphens (shape and scenario names),
# unlike the dotted metric names above
_DSL_CONTRACT_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_.-]*)`\s*\|")


def grammar_names() -> Set[str]:
    """Every name the scenario-DSL grammar declares (repro.sweep.spec)."""
    return (
        set(WORKLOAD_SHAPES)
        | set(SCENARIO_FIELDS)
        | set(PERIOD_FIELDS)
        | set(SWEEP_FIELDS)
        | set(AXIS_FIELDS)
        | set(AXIS_VALUE_FIELDS)
        | set(TRANSFORM_KEYS)
    )


def scenario_documented_names() -> Set[str]:
    """Names declared in SCENARIOS.md's grammar tables."""
    names: Set[str] = set()
    for line in SCENARIOS_MD.read_text(encoding="utf-8").splitlines():
        match = _DSL_CONTRACT_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


class TestScenarioGrammarSync:
    def test_scenarios_doc_exists(self):
        assert SCENARIOS_MD.is_file()

    def test_every_grammar_name_is_documented(self):
        missing = sorted(grammar_names() - scenario_documented_names())
        assert not missing, (
            "scenario-DSL names declared in repro.sweep.spec but "
            f"undocumented in docs/SCENARIOS.md: {missing} — add a "
            "grammar-table row for each"
        )

    def test_every_documented_name_is_in_the_grammar(self):
        stale = sorted(scenario_documented_names() - grammar_names())
        assert not stale, (
            "names documented in docs/SCENARIOS.md but absent from the "
            f"repro.sweep.spec grammar: {stale} — remove the row or add "
            "the shape/field"
        )

    def test_grammar_is_nontrivial(self):
        # guard against the lint trivially passing on an empty doc
        assert len(scenario_documented_names()) >= 20

    def test_canned_scenarios_documented(self):
        from repro.sweep import CANNED_SCENARIOS

        text = SCENARIOS_MD.read_text(encoding="utf-8")
        for name in CANNED_SCENARIOS:
            assert name in text, f"canned scenario {name!r} not mentioned"


def _intra_repo_links(path: Path) -> List[Tuple[str, Path]]:
    """(raw link, resolved target) for each relative link in *path*."""
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    links: List[Tuple[str, Path]] = []
    for raw in _MARKDOWN_LINK.findall(text):
        if raw.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = raw.split("#", 1)[0]
        if not target:
            continue
        links.append((raw, (path.parent / target).resolve()))
    return links


class TestMarkdownLinks:
    def test_curated_docs_exist(self):
        for name in LINKED_DOCS:
            assert (REPO_ROOT / name).is_file(), f"missing curated doc {name}"

    def test_all_intra_repo_links_resolve(self):
        broken: List[str] = []
        for name in LINKED_DOCS:
            path = REPO_ROOT / name
            for raw, target in _intra_repo_links(path):
                if not target.exists():
                    broken.append(f"{name}: ({raw}) -> {target}")
        assert not broken, "broken intra-repo markdown links:\n" + "\n".join(broken)

    def test_architecture_is_cross_linked(self):
        # satellite requirement: ARCHITECTURE.md reachable from README + DESIGN
        for source in ("README.md", "DESIGN.md"):
            text = (REPO_ROOT / source).read_text(encoding="utf-8")
            assert "ARCHITECTURE.md" in text, (
                f"{source} does not link docs/ARCHITECTURE.md"
            )

    def test_performance_doc_is_cross_linked(self):
        # PERFORMANCE.md reachable from README and the architecture map
        for source in ("README.md", "docs/ARCHITECTURE.md"):
            text = (REPO_ROOT / source).read_text(encoding="utf-8")
            assert "PERFORMANCE.md" in text, (
                f"{source} does not link docs/PERFORMANCE.md"
            )
