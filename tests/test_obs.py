"""Observability layer: registry semantics, manifests, metrics determinism.

The headline contract under test (docs/OBSERVABILITY.md): for a fixed
seed, ``repro simulate --metrics-out`` serializes **byte-identical**
metrics documents whether the run is serial or sharded across any worker
count — counters are integers, histogram bucket edges are fixed by spec,
gauges merge by max.  Spans are wall-clock and therefore live only in the
run manifest, never in the deterministic document.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    EXECUTION_FIELDS,
    LATENCY_BUCKETS_MS,
    METRIC_SPECS,
    MANIFEST_FILENAME,
    MetricSpec,
    MetricsRegistry,
    SPAN_SPECS,
    SpanSpec,
    config_hash,
    dump_json,
    last_run,
    metrics_document,
    register_metric,
    register_span,
    run_manifest,
    write_metrics_document,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import simulate


def _config(**overrides) -> SimulationConfig:
    """Small workload that still exercises warmup, prefetch, and misses."""
    defaults = dict(
        n_sessions=80,
        warmup_sessions=40,
        seed=11,
        n_videos=20,
        n_servers=12,
        warm_first_chunks=True,
        prefetch_after_miss=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def serial_result():
    return simulate(_config())


@pytest.fixture(scope="module")
def sharded_result():
    return simulate(_config(workers=4))


# ---------------------------------------------------------------------------
# registry semantics


class TestRegistry:
    def test_counter_is_integer(self):
        registry = MetricsRegistry()
        counter = registry.counter("cdn.requests_total")
        counter.inc()
        counter.inc(3)
        counter.inc(2.9)  # coerced, never accumulates floats
        assert counter.value == 6
        assert isinstance(counter.value, int)

    def test_unknown_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter("cdn.not_in_contract_total")
        with pytest.raises(KeyError):
            registry.tracer.span("not.a_span")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.counter("engine.clock_ms")
        with pytest.raises(TypeError):
            registry.histogram("cdn.requests_total")

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("cdn.serve_latency_ms")
        assert hist.edges == LATENCY_BUCKETS_MS
        hist.observe(0.5)  # <= 1 ms: first bucket
        hist.observe(1.0)  # boundary values land in their own bucket
        hist.observe(15.0)
        hist.observe(99999.0)  # beyond the last edge: overflow bucket
        assert hist.counts[0] == 2
        assert hist.counts[LATENCY_BUCKETS_MS.index(20.0)] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 4

    def test_snapshot_covers_full_contract_zero_valued(self):
        # workload snapshot (the byte-stable metrics document) plus the
        # execution snapshot (run-manifest accounting, docs/TELEMETRY.md)
        # jointly cover every registered spec, exactly once
        registry = MetricsRegistry()
        snap = registry.snapshot()
        emitted = set(snap["counters"]) | set(snap["gauges"]) | set(snap["histograms"])
        workload = {
            name for name, spec in METRIC_SPECS.items() if spec.scope == "workload"
        }
        assert emitted == workload
        execution = registry.execution_snapshot()
        executed = (
            set(execution["counters"])
            | set(execution["gauges"])
            | set(execution["histograms"])
        )
        assert executed == set(METRIC_SPECS) - workload
        assert executed, "expected execution-scoped specs in the contract"
        assert all(value == 0 for value in snap["counters"].values())
        assert all(
            payload["count"] == 0 and set(payload["counts"]) == {0}
            for payload in snap["histograms"].values()
        )

    def test_merge_semantics(self):
        shard_a = MetricsRegistry()
        shard_a.counter("cdn.requests_total").inc(5)
        shard_a.gauge("engine.clock_ms").set(120.0)
        shard_a.histogram("client.dfb_ms").observe(3.0)

        shard_b = MetricsRegistry()
        shard_b.counter("cdn.requests_total").inc(7)
        shard_b.gauge("engine.clock_ms").set(90.0)
        shard_b.histogram("client.dfb_ms").observe(4.0)

        merged = MetricsRegistry.from_snapshots(
            [shard_a.snapshot(), shard_b.snapshot()]
        )
        snap = merged.snapshot()
        assert snap["counters"]["cdn.requests_total"] == 12
        assert snap["gauges"]["engine.clock_ms"] == 120.0  # max, not sum
        assert snap["histograms"]["client.dfb_ms"]["count"] == 2
        bucket = LATENCY_BUCKETS_MS.index(5.0)
        assert snap["histograms"]["client.dfb_ms"]["counts"][bucket] == 2

    def test_merge_order_independent(self):
        snaps = []
        for seed_value in (3, 5, 9):
            registry = MetricsRegistry()
            registry.counter("client.chunks_total").inc(seed_value)
            registry.histogram("client.dlb_ms").observe(float(seed_value))
            snaps.append(registry.snapshot())
        forward = MetricsRegistry.from_snapshots(snaps).snapshot()
        backward = MetricsRegistry.from_snapshots(reversed(snaps)).snapshot()
        assert dump_json(forward) == dump_json(backward)

    def test_merge_rejects_mismatched_edges(self):
        registry = MetricsRegistry()
        foreign = MetricsRegistry().snapshot()
        foreign["histograms"]["client.dfb_ms"]["edges"] = [1.0, 2.0]
        foreign["histograms"]["client.dfb_ms"]["counts"] = [0, 0, 0]
        with pytest.raises(ValueError):
            registry.merge_snapshot(foreign)

    def test_runtime_registration_guards_duplicates(self):
        with pytest.raises(ValueError):
            register_metric(METRIC_SPECS["cdn.requests_total"])
        with pytest.raises(ValueError):
            register_span(SPAN_SPECS["cdn.serve"])

    def test_histogram_spec_requires_buckets(self):
        with pytest.raises(ValueError):
            # _specs validation path, exercised via a registry-independent spec
            from repro.obs.registry import _specs

            _specs([MetricSpec("x.bad", "histogram", "ms", "d", "—")])


class TestSpans:
    def test_nesting_records_parent_links(self):
        tracer = MetricsRegistry().tracer
        with tracer.span("driver.period"):
            with tracer.span("engine.run"):
                time.sleep(0.001)
            with tracer.span("engine.run"):
                pass
        snap = tracer.snapshot()
        keyed = {(entry["name"], entry["parent"]): entry for entry in snap}
        assert keyed[("driver.period", None)]["count"] == 1
        assert keyed[("engine.run", "driver.period")]["count"] == 2
        assert keyed[("engine.run", "driver.period")]["total_s"] > 0.0

    def test_totals_sum_over_parents(self):
        tracer = MetricsRegistry().tracer
        with tracer.span("driver.warmup"):
            with tracer.span("engine.run"):
                pass
        with tracer.span("driver.period"):
            with tracer.span("engine.run"):
                pass
        totals = dict(tracer.totals())
        assert set(totals) == {"driver.warmup", "driver.period", "engine.run"}


# ---------------------------------------------------------------------------
# manifests


class TestManifest:
    def test_config_hash_ignores_execution_fields(self):
        base = _config()
        assert config_hash(base) == config_hash(_config(workers=4))
        assert config_hash(base) == config_hash(_config(shard_timeout_s=30.0))
        assert config_hash(base) != config_hash(_config(seed=12))
        assert config_hash(base) != config_hash(_config(n_sessions=81))

    def test_execution_fields_exist_on_config(self):
        # the exclusion list must track SimulationConfig's real field names
        field_names = set(vars(SimulationConfig()).keys())
        assert EXECUTION_FIELDS <= field_names

    def test_metrics_document_shape(self, serial_result):
        document = metrics_document(serial_result)
        manifest = document["manifest"]
        assert manifest["schema"] == "repro.obs/1"
        assert manifest["seed"] == 11
        assert manifest["n_sessions"] == serial_result.dataset.n_sessions
        assert manifest["n_chunks"] == serial_result.dataset.n_chunks
        assert "execution" not in manifest  # deterministic doc: identity only
        assert set(document["metrics"]) == {"counters", "gauges", "histograms"}

    def test_run_manifest_records_execution(self, sharded_result):
        manifest = run_manifest(sharded_result, wall_time_s=1.5)
        execution = manifest["execution"]
        assert execution["workers"] == 4
        assert execution["n_shards"] == 4
        assert execution["wall_time_s"] == 1.5
        assert len(execution["shard_reports"]) == 4
        span_names = {entry["name"] for entry in execution["spans"]}
        assert "parallel.merge" in span_names

    def test_write_metrics_document_round_trips(self, serial_result, tmp_path):
        path = write_metrics_document(serial_result, tmp_path / "metrics.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == json.loads(dump_json(metrics_document(serial_result)))


# ---------------------------------------------------------------------------
# end-to-end determinism (the acceptance criterion)


class TestMetricsDeterminism:
    def test_serial_runs_are_reproducible(self, serial_result):
        rerun = simulate(_config())
        assert dump_json(metrics_document(rerun)) == dump_json(
            metrics_document(serial_result)
        )

    def test_serial_and_sharded_bytes_identical(self, serial_result, sharded_result):
        assert dump_json(metrics_document(sharded_result)) == dump_json(
            metrics_document(serial_result)
        )

    def test_two_shard_run_matches_too(self, serial_result):
        two_shards = simulate(_config(workers=2))
        assert dump_json(metrics_document(two_shards)) == dump_json(
            metrics_document(serial_result)
        )

    def test_histogram_edges_stable_across_shard_counts(
        self, serial_result, sharded_result
    ):
        serial_hists = serial_result.metrics.snapshot()["histograms"]
        sharded_hists = sharded_result.metrics.snapshot()["histograms"]
        for name, payload in serial_hists.items():
            assert payload["edges"] == list(LATENCY_BUCKETS_MS), name
            assert sharded_hists[name]["edges"] == payload["edges"], name

    def test_counters_are_internally_consistent(self, serial_result):
        counters = serial_result.metrics.snapshot()["counters"]
        config = _config()
        # every serve call resolves to exactly one cache status
        assert counters["cdn.requests_total"] == (
            counters["cdn.cache_hits_ram_total"]
            + counters["cdn.cache_hits_disk_total"]
            + counters["cdn.cache_misses_total"]
        )
        assert counters["cdn.backend_fetches_total"] == counters["cdn.cache_misses_total"]
        # warmup streams are observable work (they shape cache state)
        assert counters["client.sessions_total"] == (
            config.n_sessions + config.warmup_sessions
        )
        assert counters["client.chunks_total"] >= serial_result.dataset.n_chunks
        assert counters["engine.events_total"] > 0
        assert serial_result.metrics.snapshot()["gauges"]["engine.clock_ms"] > 0.0

    def test_shard_reports_carry_span_totals(self, sharded_result):
        for report in sharded_result.shard_reports:
            totals = dict(report.span_totals)
            assert "parallel.worker" in totals
            assert totals["parallel.worker"] > 0.0

    def test_last_run_capture_published(self, serial_result):
        simulate(_config())
        capture = last_run()
        assert capture is not None
        assert set(capture) == {"metrics", "spans"}
        assert capture["metrics"]["counters"]["cdn.requests_total"] > 0


# ---------------------------------------------------------------------------
# CLI surface


class TestCliObservability:
    def _simulate(self, tmp_path, name, *extra):
        out = tmp_path / name
        metrics = tmp_path / f"{name}.metrics.json"
        argv = [
            "simulate",
            "--sessions", "30",
            "--warmup", "20",
            "--videos", "12",
            "--seed", "5",
            "--out", str(out),
            "--metrics-out", str(metrics),
            *extra,
        ]
        assert cli_main(argv) == 0
        return out, metrics

    def test_metrics_out_and_manifest_written(self, tmp_path, capsys):
        out, metrics = self._simulate(tmp_path, "serial")
        capsys.readouterr()
        assert (out / MANIFEST_FILENAME).is_file()
        manifest = json.loads((out / MANIFEST_FILENAME).read_text(encoding="utf-8"))
        assert manifest["execution"]["workers"] == 1
        document = json.loads(metrics.read_text(encoding="utf-8"))
        assert document["manifest"]["config_hash"] == manifest["config_hash"]

    def test_cli_metrics_bytes_identical_across_workers(self, tmp_path, capsys):
        _, serial_metrics = self._simulate(tmp_path, "serial")
        _, sharded_metrics = self._simulate(tmp_path, "sharded", "--workers", "2")
        capsys.readouterr()
        assert serial_metrics.read_bytes() == sharded_metrics.read_bytes()

    def test_profile_flag_writes_stats(self, tmp_path, capsys):
        profile_path = tmp_path / "run.prof"
        self._simulate(tmp_path, "profiled", "--profile", str(profile_path))
        output = capsys.readouterr().out
        assert profile_path.is_file() and profile_path.stat().st_size > 0
        assert "top stages" in output
        assert "span driver.period" in output
