"""Tests for the Table-1 key-findings report harness."""

import pytest

from repro.core.report import FindingCheck, KeyFindingsReport, evaluate_key_findings


class TestReportContainer:
    def test_counts_and_lookup(self):
        report = KeyFindingsReport(
            checks=[
                FindingCheck("A", "claim a", True, {"x": 1.0}),
                FindingCheck("B", "claim b", False, {"y": 2.0}),
            ]
        )
        assert report.n_passed == 1
        assert not report.all_passed
        assert report.by_id("A").passed
        with pytest.raises(KeyError):
            report.by_id("C")

    def test_string_rendering(self):
        report = KeyFindingsReport(
            checks=[FindingCheck("A", "claim", True, {"x": 1.2345})]
        )
        text = str(report)
        assert "1/1" in text
        assert "[PASS] A" in text


class TestEvaluateOnSimulation:
    def test_thirteen_findings_with_geography(self, medium_result, medium_dataset):
        pop_locations = {p.pop_id: p.location for p in medium_result.deployment.pops}
        report = evaluate_key_findings(medium_dataset, pop_locations)
        assert len(report.checks) == 13
        assert report.all_passed, str(report)

    def test_twelve_findings_without_geography(self, medium_dataset):
        report = evaluate_key_findings(medium_dataset)
        ids = {c.finding_id for c in report.checks}
        assert "NET-1" not in ids
        assert len(report.checks) == 12

    def test_every_check_carries_evidence(self, medium_dataset):
        report = evaluate_key_findings(medium_dataset)
        assert all(check.evidence for check in report.checks)

    def test_finding_ids_match_table1_layout(self, medium_dataset):
        report = evaluate_key_findings(medium_dataset)
        ids = [c.finding_id for c in report.checks]
        assert [i for i in ids if i.startswith("CDN")] == [
            "CDN-1",
            "CDN-2",
            "CDN-3",
            "CDN-4",
        ]
        assert len([i for i in ids if i.startswith("CLI")]) == 5
