"""Unit tests for the client substrate: ABR, buffer, download stack,
rendering, browsers."""

import numpy as np
import pytest

from repro.client.abr import (
    BufferBasedAbr,
    ChunkObservation,
    HybridAbr,
    RateBasedAbr,
    make_abr,
)
from repro.client.browsers import (
    PLATFORM_PROFILES,
    browser_shares_by_os,
    get_profile,
    sample_platform,
    user_agent_string,
)
from repro.client.buffer import PlaybackBuffer
from repro.client.downloadstack import DownloadStackModel
from repro.client.rendering import GOOD_RATE_THRESHOLD, RenderingModel, rate_drop_term

LADDER = (235, 375, 560, 750, 1050, 1750, 2350, 3000)


def obs(throughput_kbps: float, bitrate: float = 1000.0) -> ChunkObservation:
    """Build an observation that yields the given player-side throughput."""
    dlb = 1000.0
    chunk_bytes = int(throughput_kbps * dlb / 8.0)
    return ChunkObservation(
        bitrate_kbps=bitrate, dfb_ms=0.0, dlb_ms=dlb, chunk_bytes=chunk_bytes
    )


class TestChunkObservation:
    def test_throughput_formula(self):
        # 1 MB over 1 s ~ 8 Mbps
        observation = ChunkObservation(1000.0, 0.0, 1000.0, 1_000_000)
        assert observation.throughput_kbps == pytest.approx(8000.0)

    def test_zero_duration_throughput(self):
        observation = ChunkObservation(1000.0, 0.0, 0.0, 1000)
        assert observation.throughput_kbps == 0.0


class TestRateBasedAbr:
    def test_startup_mid_ladder(self):
        abr = RateBasedAbr(LADDER)
        assert abr.choose_bitrate(0.0) == LADDER[4]

    def test_startup_rung_clamped(self):
        abr = RateBasedAbr(LADDER, startup_rung=99)
        assert abr.choose_bitrate(0.0) == LADDER[-1]

    def test_tracks_throughput_with_safety(self):
        abr = RateBasedAbr(LADDER, safety=0.8)
        for _ in range(5):
            abr.observe(obs(3000.0))
        # 0.8 * 3000 = 2400 -> pick 2350
        assert abr.choose_bitrate(0.0) == 2350

    def test_low_throughput_floors(self):
        abr = RateBasedAbr(LADDER)
        for _ in range(5):
            abr.observe(obs(100.0))
        assert abr.choose_bitrate(0.0) == LADDER[0]

    def test_harmonic_mean_punishes_dips(self):
        abr = RateBasedAbr(LADDER, window=3, safety=1.0)
        for tp in (10_000.0, 10_000.0, 500.0):
            abr.observe(obs(tp))
        estimate = abr.estimate_kbps()
        assert estimate < 2000.0  # harmonic mean dominated by the dip

    def test_outlier_screening_drops_burst_sample(self):
        plain = RateBasedAbr(LADDER, window=5, safety=1.0)
        screened = RateBasedAbr(LADDER, window=5, safety=1.0, screen_outliers=True)
        samples = [2000.0, 2100.0, 1900.0, 2000.0, 50_000.0]  # DS burst at the end
        for tp in samples:
            plain.observe(obs(tp))
            screened.observe(obs(tp))
        assert screened.estimate_kbps() < plain.estimate_kbps()

    def test_instantaneous_mode_vulnerable_to_bursts(self):
        """A DS burst (tiny D_LB) inflates the instantaneous estimate but
        not the full-window estimate; screening repairs the former."""
        burst = ChunkObservation(1000.0, 3000.0, 30.0, 375_000)  # 100 Mbps inst.
        normal = ChunkObservation(1000.0, 50.0, 1000.0, 375_000)  # 3 Mbps
        vulnerable = RateBasedAbr(LADDER, window=5, safety=1.0, use_instantaneous=True)
        robust = RateBasedAbr(LADDER, window=5, safety=1.0)
        screened = RateBasedAbr(
            LADDER, window=5, safety=1.0, use_instantaneous=True, screen_outliers=True
        )
        for abr in (vulnerable, robust, screened):
            for _ in range(4):
                abr.observe(normal)
            abr.observe(burst)
        # the burst inflates the instantaneous estimate (even the harmonic
        # mean moves up), the screened estimator drops it entirely
        assert vulnerable.estimate_kbps() > 1.15 * robust.estimate_kbps()
        assert screened.estimate_kbps() == pytest.approx(3000.0)

    def test_window_limits_memory(self):
        abr = RateBasedAbr(LADDER, window=2, safety=1.0)
        abr.observe(obs(100.0))
        for _ in range(2):
            abr.observe(obs(5000.0))
        assert abr.estimate_kbps() == pytest.approx(5000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateBasedAbr(LADDER, window=0)
        with pytest.raises(ValueError):
            RateBasedAbr(LADDER, safety=0.0)
        with pytest.raises(ValueError):
            RateBasedAbr(())
        with pytest.raises(ValueError):
            RateBasedAbr((500, 300))


class TestBufferBasedAbr:
    def test_below_reservoir_lowest(self):
        abr = BufferBasedAbr(LADDER, reservoir_ms=6000.0, cushion_ms=24_000.0)
        assert abr.choose_bitrate(1000.0) == LADDER[0]

    def test_above_cushion_highest(self):
        abr = BufferBasedAbr(LADDER, reservoir_ms=6000.0, cushion_ms=24_000.0)
        assert abr.choose_bitrate(30_000.0) == LADDER[-1]

    def test_monotone_in_buffer(self):
        abr = BufferBasedAbr(LADDER)
        picks = [abr.choose_bitrate(level) for level in range(0, 30_000, 1000)]
        assert picks == sorted(picks)

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferBasedAbr(LADDER, reservoir_ms=10_000.0, cushion_ms=5_000.0)


class TestHybridAbr:
    def test_thin_buffer_caps_rate_pick(self):
        abr = HybridAbr(LADDER, safety=1.0)
        for _ in range(5):
            abr.observe(obs(10_000.0))
        thin = abr.choose_bitrate(1000.0)
        deep = abr.choose_bitrate(30_000.0)
        assert thin < deep
        assert deep == LADDER[-1]

    def test_make_abr_factory(self):
        assert isinstance(make_abr("rate", LADDER), RateBasedAbr)
        assert isinstance(make_abr("buffer", LADDER), BufferBasedAbr)
        assert isinstance(make_abr("hybrid", LADDER), HybridAbr)
        with pytest.raises(ValueError):
            make_abr("bogus", LADDER)


class TestPlaybackBuffer:
    def test_first_chunk_is_startup_not_rebuffer(self):
        buffer = PlaybackBuffer()
        count, ms = buffer.on_chunk_ready(0, 6000.0, 1500.0)
        assert (count, ms) == (0, 0.0)
        assert buffer.startup_at_ms == 1500.0
        assert buffer.level_ms == 6000.0

    def test_no_stall_when_chunks_keep_up(self):
        buffer = PlaybackBuffer()
        t = 0.0
        for i in range(5):
            t += 1000.0
            count, ms = buffer.on_chunk_ready(i, 6000.0, t)
            assert count == 0 and ms == 0.0
        assert buffer.total_rebuffer_ms == 0.0

    def test_stall_charged_to_late_chunk(self):
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 0.0)
        count, ms = buffer.on_chunk_ready(1, 6000.0, 10_000.0)  # 4 s dry
        assert count == 1
        assert ms == pytest.approx(4000.0)
        assert buffer.events[0].chunk_index == 1

    def test_level_drains_in_real_time(self):
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 0.0)
        assert buffer.level_at(2500.0) == pytest.approx(3500.0)
        assert buffer.level_at(10_000.0) == 0.0

    def test_total_media_accumulates(self):
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 0.0)
        buffer.on_chunk_ready(1, 4000.0, 1000.0)
        assert buffer.total_media_ms == 10_000.0

    def test_exact_boundary_no_stall(self):
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 0.0)
        count, ms = buffer.on_chunk_ready(1, 6000.0, 6000.0)
        assert count == 0 and ms == 0.0

    def test_time_must_not_go_backwards(self):
        buffer = PlaybackBuffer()
        buffer.on_chunk_ready(0, 6000.0, 100.0)
        with pytest.raises(ValueError):
            buffer.on_chunk_ready(1, 6000.0, 50.0)
        with pytest.raises(ValueError):
            buffer.level_at(50.0)

    def test_media_must_be_positive(self):
        with pytest.raises(ValueError):
            PlaybackBuffer().on_chunk_ready(0, 0.0, 0.0)


class TestBrowsers:
    def test_profiles_cover_big_three_os(self):
        oses = {p.os for p in PLATFORM_PROFILES}
        assert oses == {"Windows", "Mac", "Linux"}

    def test_shares_sum_to_one(self):
        assert sum(p.share for p in PLATFORM_PROFILES) == pytest.approx(1.0, abs=0.02)

    def test_paper_os_marginals(self):
        windows = sum(p.share for p in PLATFORM_PROFILES if p.os == "Windows")
        mac = sum(p.share for p in PLATFORM_PROFILES if p.os == "Mac")
        assert 0.84 <= windows <= 0.92  # paper: 88.5%
        assert 0.06 <= mac <= 0.13  # paper: 9.38%

    def test_paper_browser_marginals(self):
        chrome = sum(p.share for p in PLATFORM_PROFILES if p.browser == "Chrome")
        firefox = sum(p.share for p in PLATFORM_PROFILES if p.browser == "Firefox")
        assert 0.38 <= chrome <= 0.48  # paper: 43%
        assert 0.32 <= firefox <= 0.42  # paper: 37%

    def test_table5_orderings_encoded(self):
        assert get_profile("Windows", "Safari").ds_mean_ms > get_profile(
            "Windows", "Firefox"
        ).ds_mean_ms
        assert get_profile("Linux", "Safari").ds_mean_ms > 1000.0
        assert get_profile("Windows", "Chrome").ds_mean_ms < 150.0

    def test_unpopular_browsers_render_worse(self):
        assert get_profile("Windows", "Yandex").render_inefficiency > get_profile(
            "Windows", "Chrome"
        ).render_inefficiency
        assert not get_profile("Windows", "Yandex").popular

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("BeOS", "NetPositive")

    def test_sample_platform_distribution(self, rng):
        samples = [sample_platform(rng).os for _ in range(2000)]
        assert 0.80 < np.mean([os == "Windows" for os in samples]) < 0.95

    def test_shares_by_os_normalized(self):
        for pairs in browser_shares_by_os().values():
            assert sum(share for _, share in pairs) == pytest.approx(1.0)

    def test_user_agent_mentions_browser(self):
        profile = get_profile("Windows", "Chrome")
        assert "Chrome" in user_agent_string(profile)
        assert "Windows" in user_agent_string(profile)


class TestDownloadStack:
    def test_first_chunk_costs_more(self, rng):
        model = DownloadStackModel(get_profile("Windows", "Chrome"), rng)
        first = [model.sample(0, 1000.0).first_byte_delay_ms for _ in range(300)]
        later = [model.sample(3, 1000.0).first_byte_delay_ms for _ in range(300)]
        assert np.median(first) > np.median(later) + 100.0

    def test_bad_platform_heavier_tail(self):
        good_rng = np.random.default_rng(1)
        bad_rng = np.random.default_rng(1)
        good = DownloadStackModel(get_profile("Windows", "Chrome"), good_rng)
        bad = DownloadStackModel(get_profile("Windows", "Safari"), bad_rng)
        good_delays = [good.sample(2, 1000.0).first_byte_delay_ms for _ in range(500)]
        bad_delays = [bad.sample(2, 1000.0).first_byte_delay_ms for _ in range(500)]
        assert np.mean(bad_delays) > 2 * np.mean(good_delays)

    def test_transient_shifts_bytes_from_dlb(self, rng):
        model = DownloadStackModel(get_profile("Windows", "Chrome"), rng)
        for _ in range(5000):
            effect = model.sample(2, 2000.0)
            if effect.transient:
                assert effect.first_byte_delay_ms > 300.0
                assert 0.0 < effect.last_byte_shift_ms <= 0.95 * 2000.0
                break
        else:
            pytest.fail("no transient event in 5000 chunks (prob ~0.3%)")

    def test_nontransient_never_shifts_dlb(self, rng):
        model = DownloadStackModel(get_profile("Mac", "Safari"), rng)
        for _ in range(200):
            effect = model.sample(1, 500.0)
            if not effect.transient:
                assert effect.last_byte_shift_ms == 0.0

    def test_validation(self, rng):
        model = DownloadStackModel(get_profile("Windows", "Chrome"), rng)
        with pytest.raises(ValueError):
            model.sample(-1, 100.0)
        with pytest.raises(ValueError):
            model.sample(0, -1.0)


class TestRendering:
    def test_rate_drop_term_shape(self):
        assert rate_drop_term(0.25) > rate_drop_term(0.9) > rate_drop_term(1.2)
        assert rate_drop_term(1.5) == rate_drop_term(4.0)  # flat beyond the knee
        assert rate_drop_term(GOOD_RATE_THRESHOLD) == pytest.approx(0.03)

    def test_rate_drop_term_validation(self):
        with pytest.raises(ValueError):
            rate_drop_term(-0.1)

    def make_model(self, rng, gpu=False, ineff_browser=("Windows", "Chrome"), load=0.0, cores=4):
        return RenderingModel(
            platform=get_profile(*ineff_browser),
            gpu=gpu,
            cpu_cores=cores,
            cpu_background_load=load,
            rng=rng,
        )

    def test_gpu_drops_almost_nothing(self, rng):
        model = self.make_model(rng, gpu=True)
        fractions = [
            model.drop_fraction(2.0, True, 1000.0, 0.0) for _ in range(100)
        ]
        assert max(fractions) < 0.02

    def test_hidden_player_drops_heavily(self, rng):
        model = self.make_model(rng)
        assert model.drop_fraction(2.0, False, 1000.0, 0.0) > 0.5

    def test_slow_rate_drops_more(self, rng):
        model = self.make_model(rng)
        slow = np.mean([model.drop_fraction(0.5, True, 1000.0, 0.0) for _ in range(200)])
        fast = np.mean([model.drop_fraction(2.0, True, 1000.0, 0.0) for _ in range(200)])
        assert slow > 2 * fast

    def test_deep_buffer_hides_slow_rate(self, rng):
        model = self.make_model(rng)
        thin = np.mean([model.drop_fraction(0.5, True, 1000.0, 0.0) for _ in range(200)])
        deep = np.mean(
            [model.drop_fraction(0.5, True, 1000.0, 20_000.0) for _ in range(200)]
        )
        assert deep < thin

    def test_cpu_load_increases_drops(self, rng):
        idle = self.make_model(np.random.default_rng(1), load=0.0, cores=8)
        loaded = self.make_model(np.random.default_rng(1), load=1.0, cores=8)
        idle_drops = np.mean([idle.drop_fraction(3.0, True, 1000.0, 0.0) for _ in range(200)])
        loaded_drops = np.mean(
            [loaded.drop_fraction(3.0, True, 1000.0, 0.0) for _ in range(200)]
        )
        assert loaded_drops > idle_drops + 0.03

    def test_inefficient_browser_drops_more(self):
        chrome = self.make_model(np.random.default_rng(2))
        yandex = self.make_model(
            np.random.default_rng(2), ineff_browser=("Windows", "Yandex")
        )
        chrome_drops = np.mean(
            [chrome.drop_fraction(2.0, True, 1000.0, 0.0) for _ in range(200)]
        )
        yandex_drops = np.mean(
            [yandex.drop_fraction(2.0, True, 1000.0, 0.0) for _ in range(200)]
        )
        assert yandex_drops > 2 * chrome_drops

    def test_render_chunk_frame_accounting(self, rng):
        model = self.make_model(rng)
        result = model.render_chunk(2.0, True, 1000.0, 0.0, 6000.0)
        assert result.total_frames == 180
        assert 0 <= result.dropped_frames <= result.total_frames
        assert result.avg_fps == pytest.approx(
            30.0 * (1 - result.dropped_frames / result.total_frames)
        )

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RenderingModel(get_profile("Windows", "Chrome"), False, 0, 0.0, rng)
        with pytest.raises(ValueError):
            RenderingModel(get_profile("Windows", "Chrome"), False, 4, 1.5, rng)
        model = self.make_model(rng)
        with pytest.raises(ValueError):
            model.render_chunk(1.0, True, 1000.0, 0.0, 0.0)
