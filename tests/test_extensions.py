"""Tests for the adoption extensions: CSV beacons, A/B comparison, scenarios."""

import dataclasses

import numpy as np
import pytest

from helpers import make_dataset, player_chunk
from repro.core.comparison import bootstrap_ci, compare_datasets
from repro.simulation.scenarios import SCENARIOS, run_scenario
from repro.telemetry.beacons import export_beacons_csv, import_beacons_csv


class TestBeaconsCsv:
    def test_round_trip(self, tmp_path):
        dataset = make_dataset(3)
        export_beacons_csv(dataset, tmp_path / "beacons")
        loaded = import_beacons_csv(tmp_path / "beacons")
        assert loaded.player_chunks == dataset.player_chunks
        assert loaded.cdn_chunks == dataset.cdn_chunks
        assert loaded.tcp_snapshots == dataset.tcp_snapshots
        assert loaded.player_sessions == dataset.player_sessions
        assert loaded.cdn_sessions == dataset.cdn_sessions

    def test_round_trip_on_simulated_trace(self, small_result, tmp_path):
        export_beacons_csv(small_result.dataset, tmp_path / "b")
        loaded = import_beacons_csv(tmp_path / "b")
        assert loaded.n_sessions == small_result.dataset.n_sessions
        assert loaded.n_chunks == small_result.dataset.n_chunks
        # ground truth never leaves the simulator
        assert loaded.ground_truth == []
        # booleans survive the text round trip
        originals = {
            (c.session_id, c.chunk_id): c.visible
            for c in small_result.dataset.player_chunks
        }
        for chunk in loaded.player_chunks[:100]:
            assert chunk.visible == originals[(chunk.session_id, chunk.chunk_id)]

    def test_missing_files_yield_empty_lists(self, tmp_path):
        directory = export_beacons_csv(make_dataset(1), tmp_path / "b")
        (directory / "tcp_snapshots.csv").unlink()
        loaded = import_beacons_csv(directory)
        assert loaded.tcp_snapshots == []
        assert loaded.n_chunks == 1

    def test_unknown_columns_rejected(self, tmp_path):
        directory = export_beacons_csv(make_dataset(1), tmp_path / "b")
        target = directory / "player_chunks.csv"
        content = target.read_text().splitlines()
        content[0] += ",surprise"
        content[1] += ",1"
        target.write_text("\n".join(content) + "\n")
        with pytest.raises(ValueError, match="unknown columns"):
            import_beacons_csv(directory)

    def test_missing_required_column_rejected(self, tmp_path):
        directory = export_beacons_csv(make_dataset(1), tmp_path / "b")
        target = directory / "cdn_chunks.csv"
        lines = target.read_text().splitlines()
        header = lines[0].split(",")
        index = header.index("chunk_bytes")
        stripped = [
            ",".join(col for i, col in enumerate(line.split(",")) if i != index)
            for line in lines
        ]
        target.write_text("\n".join(stripped) + "\n")
        with pytest.raises(ValueError, match="missing required columns"):
            import_beacons_csv(directory)

    def test_bad_value_reports_line(self, tmp_path):
        directory = export_beacons_csv(make_dataset(1), tmp_path / "b")
        target = directory / "tcp_snapshots.csv"
        lines = target.read_text().splitlines()
        lines[1] = lines[1].replace("60.0", "sixty", 1)
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":2:"):
            import_beacons_csv(directory)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            import_beacons_csv(tmp_path / "nope")


class TestBootstrapCi:
    def test_contains_true_mean_for_tight_data(self):
        low, high = bootstrap_ci([10.0] * 50)
        assert low == high == 10.0

    def test_interval_widens_with_variance(self):
        rng = np.random.default_rng(0)
        tight = bootstrap_ci(rng.normal(0, 0.1, 200), seed=1)
        loose = bootstrap_ci(rng.normal(0, 10.0, 200), seed=1)
        assert (loose[1] - loose[0]) > (tight[1] - tight[0])

    def test_median_statistic(self):
        low, high = bootstrap_ci([1, 2, 3, 4, 100], statistic=np.median)
        assert low <= 3 <= high <= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)


class TestCompareDatasets:
    def test_identical_datasets_show_no_significant_change(self):
        dataset = make_dataset(3)
        report = compare_datasets(dataset, dataset)
        assert report.deltas
        assert not report.significant_changes
        for delta in report.deltas:
            assert delta.delta == 0.0

    def test_detects_injected_regression(self):
        baseline = make_dataset(3)
        # candidate: every session rebuffers heavily
        degraded = make_dataset(3)
        degraded.player_chunks = [
            player_chunk(chunk=i, rebuffer_count=1, rebuffer_ms=3000.0)
            for i in range(3)
        ]
        # replicate sessions so the bootstrap has something to resample
        for k in range(1, 30):
            for source, sid in ((baseline, f"b{k}"), (degraded, f"d{k}")):
                base = make_dataset(3)
                for record_list_name in (
                    "player_chunks",
                    "cdn_chunks",
                    "tcp_snapshots",
                    "player_sessions",
                    "cdn_sessions",
                ):
                    for record in getattr(base, record_list_name):
                        # dataclasses.replace works for slotted records,
                        # which have no per-instance __dict__
                        setattr_record = dataclasses.replace(record, session_id=sid)
                        getattr(source, record_list_name).append(setattr_record)
        for chunk_index, record in enumerate(list(degraded.player_chunks)):
            if record.session_id.startswith("d"):
                degraded.player_chunks[chunk_index] = dataclasses.replace(
                    record, rebuffer_count=1, rebuffer_ms=3000.0
                )
        report = compare_datasets(baseline, degraded, n_resamples=200)
        rebuffer = report.by_metric("rebuffer_rate_pct")
        assert rebuffer.delta > 0
        assert rebuffer.significant

    def test_by_metric_unknown(self):
        report = compare_datasets(make_dataset(1), make_dataset(1))
        with pytest.raises(KeyError):
            report.by_metric("nope")

    def test_report_renders(self):
        report = compare_datasets(make_dataset(2), make_dataset(2))
        text = str(report)
        assert "sessions" in text
        assert "startup_ms" in text


class TestScenarios:
    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            run_scenario("alien-invasion")

    def test_registry_names(self):
        assert set(SCENARIOS) == {"flash-crowd", "cache-flush", "backend-brownout"}

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_produces_both_periods(self, name):
        outcome = run_scenario(name, seed=41)
        assert outcome.baseline.n_sessions == 800
        assert outcome.incident.n_sessions == 800

    def test_cache_flush_hurts_misses(self):
        outcome = run_scenario("cache-flush", seed=43)

        def miss(dataset):
            return np.mean([c.cache_status == "miss" for c in dataset.cdn_chunks])

        assert miss(outcome.incident) > miss(outcome.baseline) + 0.1

    def test_backend_brownout_hurts_miss_latency(self):
        outcome = run_scenario("backend-brownout", seed=47)

        def miss_latency(dataset):
            values = [
                c.total_server_ms
                for c in dataset.cdn_chunks
                if c.cache_status == "miss"
            ]
            return np.median(values) if values else 0.0

        assert miss_latency(outcome.incident) > 2.0 * miss_latency(outcome.baseline)

    def test_flash_crowd_is_cache_friendly_but_loads_servers(self):
        outcome = run_scenario("flash-crowd", seed=53)

        def miss(dataset):
            return np.mean([c.cache_status == "miss" for c in dataset.cdn_chunks])

        # a 10-title hot set is trivially cacheable
        assert miss(outcome.incident) < miss(outcome.baseline)
