"""Ablation: cache eviction policy under a Zipf workload.

§4.1-1 take-away: "the default LRU cache eviction policy in ATS could be
changed to better suited policies for popular-heavy workloads such as
GD-size or perfect-LFU [Breslau et al.]".  This bench isolates the cache:
a Zipf request stream over a catalog whose footprint far exceeds capacity,
so the eviction decision is what matters.

Expected ordering of hit ratios: Perfect-LFU >= LRU >= FIFO, with GD-Size
competitive (it additionally weighs size/cost, which a uniform-size
stream neutralizes).
"""

import numpy as np
import pytest

from repro.cdn.cache import TwoLevelCache
from repro.workload.popularity import PopularityModel

N_OBJECTS = 4000
N_REQUESTS = 60_000
OBJECT_BYTES = 1000
RAM_CAPACITY = 60 * OBJECT_BYTES
DISK_CAPACITY = 400 * OBJECT_BYTES


def drive_policy(policy_name: str, alpha: float = 0.9, seed: int = 3):
    """Run the request stream; returns (overall hit ratio, ram hit ratio)."""
    rng = np.random.default_rng(seed)
    popularity = PopularityModel(n_videos=N_OBJECTS, alpha=alpha)
    requests = popularity.sample_ranks(rng, N_REQUESTS)
    cache = TwoLevelCache(RAM_CAPACITY, DISK_CAPACITY, policy_name=policy_name)
    hits = 0
    ram_hits = 0
    for key in requests:
        status = cache.lookup(int(key), OBJECT_BYTES)
        if status.is_hit:
            hits += 1
            if status.value == "hit_ram":
                ram_hits += 1
        else:
            cache.admit(int(key), OBJECT_BYTES)
    return hits / N_REQUESTS, ram_hits / N_REQUESTS


def run_comparison():
    return {name: drive_policy(name) for name in ("lru", "fifo", "gdsize", "perfect-lfu")}


def test_bench_ablation_cache_policy(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("policy | hit ratio | ram-hit ratio")
    for name, (hit, ram) in results.items():
        print(f"  {name:<12} | {hit:.4f} | {ram:.4f}")
    assert results["perfect-lfu"][0] >= results["lru"][0] - 0.005
    assert results["lru"][0] >= results["fifo"][0] - 0.005
    # frequency-aware policies must beat FIFO outright on a Zipf stream
    assert results["perfect-lfu"][0] > results["fifo"][0]
