"""Bench fig17 — download-stack buffering case study + Eq. 4 detection.

Paper: chunk 7 of the example session shows a D_FB spike with unremarkable
network/server metrics and an impossible instantaneous throughput; Eq. 4
flags exactly that chunk.
"""

from bench_util import run_and_report


def test_bench_fig17(benchmark):
    result = run_and_report(benchmark, "fig17")
    s = result.summary
    print(
        f"flagged chunk {s['flagged_chunk']:.0f} (expected 7); "
        f"TP_inst / connection TP = {s['case_tp_over_connection_tp']:.1f}x"
    )
