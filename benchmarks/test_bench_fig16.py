"""Bench fig16 — latency vs throughput shares by performance score.

Paper: chunks with perf score < 1 are overwhelmingly throughput-limited
(low latency share, huge D_LB gap vs good chunks).
"""

from bench_util import run_and_report


def test_bench_fig16(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig16", medium_dataset)
    s = result.summary
    print(
        f"latency-share medians good/bad: {s['median_latency_share_good']:.2f}/"
        f"{s['median_latency_share_bad']:.2f}; D_LB medians good/bad: "
        f"{s['median_dlb_good_ms']:.0f}/{s['median_dlb_bad_ms']:.0f} ms"
    )
