"""Bench fig10 — CDF of CV(SRTT) per (prefix, PoP) path.

Paper: ~40% of paths show CV > 1.  Our simulated footprint is smaller and
calmer; the check is that a heavy high-variation tail exists.
"""

from bench_util import run_and_report


def test_bench_fig10(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig10", medium_dataset)
    s = result.summary
    print(
        f"paths: {s['n_paths']:.0f}; median CV {s['median_path_cv']:.2f}; "
        f"share CV>1: {s['fraction_paths_cv_above_1']:.3f} (paper ~0.40)"
    )
