"""Bench fig19 — dropped frames vs chunk download rate.

Paper: steep drops below 1 s/s, knee at 1.5 s/s, flat beyond; hardware
rendering near zero; 85.5% of chunks confirm the 1.5 rule (5.7% saved by
the buffer, 6.9% CPU-bound anyway).
"""

from bench_util import run_and_report


def test_bench_fig19(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig19", medium_dataset)
    print("rate bin (s/s) | mean dropped %")
    print(f"  HW-rendered   | {result.series['hw_rendering_drop_pct']:.2f}")
    for center, mean, _, _, _, _ in result.series["rows_center_mean_median_q25_q75_n"]:
        print(f"  {center:12.2f} | {mean:6.2f}")
    s = result.summary
    print(
        f"rule split confirm/buffered/cpu-bound: {s['rule_confirming_fraction']:.3f}/"
        f"{s['low_rate_good_render_fraction']:.3f}/"
        f"{s['good_rate_bad_render_fraction']:.3f} (paper 0.855/0.057/0.069)"
    )
