"""Bench fig08 — CDFs of per-session srtt_min and sigma(SRTT).

Paper: both a heavy baseline tail (distance/enterprise) and a heavy
variation tail (congestion episodes) exist across sessions.
"""

from bench_util import run_and_report


def test_bench_fig08(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig08", medium_dataset)
    s = result.summary
    print(
        f"srtt_min median/p90: {s['median_srtt_min_ms']:.1f}/"
        f"{s['p90_srtt_min_ms']:.1f} ms; sigma median/p90: "
        f"{s['median_sigma_srtt_ms']:.1f}/{s['p90_sigma_srtt_ms']:.1f} ms; "
        f"share above 100 ms baseline: {s['fraction_srtt_min_above_100ms']:.3f}"
    )
