"""Bench fig15 — average retransmission rate per chunk position.

Paper: the first chunk's rate towers over the rest (slow-start burst
losses), then flattens in congestion avoidance.
"""

from bench_util import run_and_report


def test_bench_fig15(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig15", medium_dataset)
    print("chunk | mean retx %")
    for cid, pct in result.series["retx_rate_by_chunk"]:
        print(f"  {cid:3d} | {pct:6.2f}")
