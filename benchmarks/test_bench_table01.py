"""Bench table01 — all thirteen key findings of the paper's Table 1.

This is the headline reproduction gate: every finding must be supported by
the simulated end-to-end trace.
"""

from bench_util import run_and_report


def test_bench_table01(benchmark, medium_result):
    result = run_and_report(benchmark, "table01", medium_result)
    print(result.series["report_text"])
