"""Shared benchmark fixtures: one medium simulation for the whole session.

Every per-figure benchmark times the *analysis* (the part a production
pipeline re-runs daily); the underlying trace is simulated once and shared.
Ablation benches simulate their own small configurations.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import common


@pytest.fixture(scope="session")
def medium_result():
    return common.standard_result("medium")


@pytest.fixture(scope="session")
def medium_dataset(medium_result):
    return common.filtered_dataset("medium")
