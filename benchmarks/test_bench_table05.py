"""Bench table05 — platforms by persistent download-stack latency (Eq. 5).

Paper (mean D_DS): Safari/Linux 1041 ms, Safari/Windows 1028 ms,
Firefox/Windows 283 ms, Other/Windows 281 ms, Firefox/Mac 275 ms.
Expected shape: Safari-off-Mac on top by a wide margin, mainstream Chrome
far below, and ~17.6% of chunks with a non-zero bound.
"""

from bench_util import run_and_report


def test_bench_table05(benchmark, medium_dataset):
    result = run_and_report(benchmark, "table05", medium_dataset)
    print("os / browser | mean DS (ms) | chunks | nonzero frac")
    for os_name, browser, mean_ds, n, frac in result.series["platform_rows"][:8]:
        print(f"  {os_name:>7} / {browser:<9} | {mean_ds:8.1f} | {n:6d} | {frac:.3f}")
    print(
        f"paper nonzero-DS share 0.176 | measured "
        f"{result.summary['nonzero_ds_chunk_fraction']:.3f}"
    )
