"""Bench fig04 — startup time vs first-chunk server latency.

Paper: startup grows from ~0.6 s to ~2.5 s as server latency grows to
600 ms.  Expected shape here: monotone growth of binned medians and a
clear hit-vs-miss startup gap.
"""

from bench_util import run_and_report


def test_bench_fig04(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig04", medium_dataset)
    rows = result.series["rows_center_mean_median_q25_q75_n"]
    print("server-latency bin center (ms) | median startup (ms) | n")
    for center, _, median, _, _, n in rows:
        print(f"  {center:8.1f} | {median:8.1f} | {n}")
