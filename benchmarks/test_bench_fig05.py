"""Bench fig05 — CDN latency breakdown.

Paper: D_wait/D_open negligible; D_read bimodal around the 10 ms
open-read-retry timer (~35% of chunks affected); hit median ~2 ms vs miss
median ~80 ms (~40x); misses dominate the ~5% of chunks where the server
out-costs the network.
"""

from bench_util import run_and_report


def test_bench_fig05(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig05", medium_dataset)
    s = result.summary
    print(
        f"paper hit/miss medians 2/80 ms (40x) | measured "
        f"{s['median_hit_total_ms']:.1f}/{s['median_miss_total_ms']:.1f} ms "
        f"({s['hit_miss_ratio']:.0f}x)"
    )
    print(
        f"paper retry-timer share ~0.35 | measured {s['retry_timer_chunk_fraction']:.2f}"
    )
    print(
        f"paper miss ratio among server-dominant chunks ~0.40 vs 0.02 overall | "
        f"measured {s['miss_ratio_among_server_dominant']:.2f} vs "
        f"{s['miss_ratio_overall']:.2f}"
    )
