"""Bench fig21 — browser popularity and rendering quality per platform.

Paper: Chrome (internal Flash) and Safari-on-Mac (native HLS) outperform;
Firefox trails; the unpopular "Other" bucket is worst.
"""

from bench_util import run_and_report


def test_bench_fig21(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig21", medium_dataset)
    print("os / browser | chunk share % | mean dropped %")
    for os_name, browser, share, drops in result.series["rows_os_browser_share_drops"]:
        print(f"  {os_name:>7} / {browser:<9} | {share:6.2f} | {drops:6.2f}")
