"""Bench fig09 — geography of persistent tail-latency prefixes.

Paper: 75% of the persistent tail is outside the US; among nearby US tail
prefixes ~90% are enterprises.
"""

from bench_util import run_and_report


def test_bench_fig09(benchmark, medium_result):
    result = run_and_report(benchmark, "fig09", medium_result)
    s = result.summary
    print(
        f"paper non-US share ~0.75 | measured {s['non_us_fraction']:.2f}; "
        f"paper nearby-US enterprise share ~0.90 | measured "
        f"{s['us_close_enterprise_fraction']:.2f}"
    )
