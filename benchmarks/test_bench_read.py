"""Read-path gate: the columnar analysis pass must hold its speedup.

Not a paper artifact — the CI ``perf-smoke`` job runs this bench on every
push.  It synthesizes the 50k-session spill tier
(``repro.telemetry.synth``, low threshold so every kind has many sorted
runs), drives the three headline analyses once through the record path
(one streaming ``consume`` pass — the fastest record-object spelling) and
once through ``repro.core.columnar_analysis``, asserts the outputs are
*identical* (JSON serialization and report text, the byte-identity
contract of docs/PERFORMANCE.md "The read path"), and then requires the
columnar pass to be at least ``MIN_SPEEDUP`` times faster.  The ratio is
machine-independent to first order — both paths scale with the same row
volume on the same interpreter — so the gate catches a lost vectorized
path or an accidentally quadratic planner, not percent-level drift.
Wall times land in the ``read-path`` trajectory of ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from bench_util import write_perf_record
from repro.core import columnar_analysis as ca
from repro.core.streaming import (
    FaultScoreAccumulator,
    LocalizationAccumulator,
    QoeAccumulator,
    consume,
)
from repro.telemetry.synth import synthesize_spill

pytestmark = pytest.mark.bench

N_SESSIONS = 50_000
SEED = 7
#: low threshold => many sorted runs per kind (the planner's stress regime)
THRESHOLD_ROWS = 32_768
#: measured ~15x on the development host; 10x is the contract floor
MIN_SPEEDUP = 10.0


def test_read_path_speedup_and_identity(tmp_path):
    dataset = synthesize_spill(
        tmp_path / "spill", N_SESSIONS, seed=SEED, threshold_rows=THRESHOLD_ROWS
    )
    assert dataset.n_sessions == N_SESSIONS

    start = time.perf_counter()
    q_rec, loc_rec, fs_rec = consume(
        dataset, QoeAccumulator(), LocalizationAccumulator(), FaultScoreAccumulator()
    )
    records_wall_s = time.perf_counter() - start

    # columnar last, so the recorded obs spans are the analysis.* breakdown
    start = time.perf_counter()
    out = ca.analyze_dataset(dataset)
    columnar_wall_s = time.perf_counter() - start

    assert json.dumps(out["qoe"]) == json.dumps(q_rec)
    assert json.dumps(out["localization"]) == json.dumps(loc_rec)
    assert out["faultscore"] == fs_rec
    assert out["faultscore"].format_report() == fs_rec.format_report()

    speedup = records_wall_s / columnar_wall_s
    record = write_perf_record(
        "read-path",
        columnar_wall_s,
        n_sessions=N_SESSIONS,
        n_chunks=dataset.n_chunks,
        extra={
            "records_wall_s": round(records_wall_s, 4),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\n  read-path: records {records_wall_s:.2f}s vs columnar "
        f"{columnar_wall_s:.2f}s = {speedup:.1f}x "
        f"({record['chunks_per_s']} chunks/s columnar)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar read path only {speedup:.1f}x faster than the record "
        f"path (contract floor {MIN_SPEEDUP}x, docs/PERFORMANCE.md)"
    )
