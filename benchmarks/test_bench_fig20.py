"""Bench fig20 — controlled CPU-load rendering experiment.

Paper: GPU bar near zero; with software rendering, each additional loaded
core (of 8) adds roughly a percentage point of dropped frames.
"""

from bench_util import run_and_report


def test_bench_fig20(benchmark):
    result = run_and_report(benchmark, "fig20")
    print("load level | dropped %")
    for label, pct in zip(result.series["labels"], result.series["dropped_pct"]):
        print(f"  {label:>6} | {pct:5.2f}")
