"""Ablation: playback buffer depth vs rebuffering.

§4.2-2 take-away: for clients on fluctuation-prone paths the player can
"increase the buffer size to deal with fluctuations".  Sweeping the target
buffer shows the stall/memory trade-off: deeper buffers absorb longer
throughput collapses.
"""

import numpy as np

from ablation_util import run_config


def rebuffer_metrics(result):
    sessions = result.dataset.sessions()
    return (
        float(np.mean([s.rebuffer_rate > 0 for s in sessions])),
        float(np.mean([s.total_rebuffer_ms for s in sessions])),
    )


def run_sweep():
    metrics = {}
    for buffer_s in (6.0, 12.0, 18.0, 30.0):
        result = run_config(max_buffer_ms=buffer_s * 1000.0)
        metrics[buffer_s] = rebuffer_metrics(result)
    return metrics


def test_bench_ablation_buffer_depth(benchmark):
    metrics = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("target buffer (s) | sessions rebuffering | mean stall ms")
    for buffer_s, (fraction, stall_ms) in metrics.items():
        print(f"  {buffer_s:6.0f} | {fraction:.4f} | {stall_ms:8.1f}")
    shallowest = metrics[6.0]
    deepest = metrics[30.0]
    assert deepest[0] <= shallowest[0]
    assert deepest[1] <= shallowest[1]
