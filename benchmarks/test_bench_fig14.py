"""Bench fig14 — P(rebuffering at chunk X) and conditioned on loss at X.

Paper: loss anywhere lifts rebuffering odds; the lift is largest for the
earliest chunks (thin buffer).
"""

from bench_util import run_and_report


def test_bench_fig14(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig14", medium_dataset)
    print("chunk | P(rebuf) % | P(rebuf|loss) %")
    for cid, p, p_loss in result.series["rows_chunkid_p_pgivenloss"]:
        conditional = f"{100*p_loss:.2f}" if p_loss is not None else "   -"
        print(f"  {cid:3d} | {100*p:8.2f} | {conditional}")
