"""Memory-smoke gate: streaming analyses over a spill under a heap budget.

Not a paper artifact — the CI `memory-smoke` job runs exactly this bench
on every push.  It generates a mid-size synthetic spill
(`repro.telemetry.synth`, schema-valid columnar sessions straight to
sorted on-disk runs), then streams the headline analyses over the lazy
k-way merge with `tracemalloc` tracing, and fails if peak traced heap
blows through the budget implied by docs/TELEMETRY.md's RSS model:
write buffers + the per-kind read-side materialization budget +
accumulator state — nothing that scales with total rows.

The spill threshold is set low on purpose so the run has many sorted
runs per kind: that is the regime where an unbounded reader (one full
block per open run) would blow past the budget, which is precisely the
regression this gate exists to catch.  Wall time and peak heap land in
the ``BENCH_perf.json`` trajectory (uploaded as a CI artifact).

The `large` tier — a million-session spill, the paper-scale regime the
columnar core is built for — is stubbed here behind
``REPRO_BENCH_LARGE=1``: too slow for per-push CI, same code path, run
it manually before touching the spill reader or the streaming
accumulators.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import pytest

from bench_util import write_perf_record
from repro.core.streaming import (
    LocalizationAccumulator,
    QoeAccumulator,
    consume,
)
from repro.telemetry.synth import synthesize_spill

pytestmark = pytest.mark.bench

N_SESSIONS = 50_000
SEED = 7
#: low threshold => many sorted runs per kind (the stress regime)
THRESHOLD_ROWS = 32_768
#: peak traced heap budget.  Measured ~150 MB on a 2025 dev box at this
#: scale; the model says the peak is independent of session count, so a
#: generous 2x headroom only trips on an actual O(rows) regression.
PEAK_HEAP_BUDGET_MB = 320.0
WALL_BUDGET_S = 600.0

LARGE_N_SESSIONS = 1_000_000


def _stream_analyses(dataset):
    return consume(dataset, QoeAccumulator(), LocalizationAccumulator())


def _run(tmp_path, n_sessions):
    """Generate a spill, stream the analyses, return (peak bytes, wall s, qoe)."""
    dataset = synthesize_spill(
        tmp_path / "spill", n_sessions, seed=SEED, threshold_rows=THRESHOLD_ROWS
    )
    assert dataset.n_sessions == n_sessions
    tracemalloc.start()
    start = time.perf_counter()
    qoe, localization = _stream_analyses(dataset)
    wall_s = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert qoe["n_sessions"] == n_sessions
    assert abs(sum(localization.values()) - 1.0) < 1e-9
    return dataset, peak, wall_s


def test_memory_smoke_under_heap_budget(tmp_path):
    dataset, peak, wall_s = _run(tmp_path, N_SESSIONS)
    peak_mb = peak / 1e6
    record = write_perf_record(
        "memory_smoke",
        wall_s,
        n_sessions=N_SESSIONS,
        n_chunks=dataset.n_chunks,
        extra={"peak_heap_mb": round(peak_mb, 1)},
    )
    print(f"\n  memory-smoke: {record['wall_s']}s wall (tracemalloc on), "
          f"{peak_mb:.1f} MB peak heap, "
          f"{record['sessions_per_s']} sessions/s")
    assert peak_mb < PEAK_HEAP_BUDGET_MB, (
        f"streaming pass peaked at {peak_mb:.1f} MB >= "
        f"{PEAK_HEAP_BUDGET_MB} MB — read-side memory is scaling with row "
        f"volume (docs/TELEMETRY.md, 'RSS budget model')"
    )
    assert wall_s < WALL_BUDGET_S


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="large tier: set REPRO_BENCH_LARGE=1 (million-session spill, minutes)",
)
def test_memory_large_tier(tmp_path):
    # The same gate at paper-order scale: 1 M sessions, ~22 M rows.  The
    # budget does NOT grow with the 20x session count — that flatness is
    # the whole contract.
    dataset, peak, wall_s = _run(tmp_path, LARGE_N_SESSIONS)
    peak_mb = peak / 1e6
    write_perf_record(
        "memory_large",
        wall_s,
        n_sessions=LARGE_N_SESSIONS,
        n_chunks=dataset.n_chunks,
        extra={"peak_heap_mb": round(peak_mb, 1)},
    )
    print(f"\n  memory-large: {wall_s:.1f}s wall, {peak_mb:.1f} MB peak heap")
    assert peak_mb < PEAK_HEAP_BUDGET_MB


# ---------------------------------------------------------------------------
# live service tier: peak heap flat in run duration


SERVE_ROUNDS_SHORT = 4
SERVE_ROUNDS_LONG = 12
#: long/short peak ratio bound.  The service drops per-round telemetry
#: after folding, bounds the sealed-window deque, and keeps O(1)
#: accumulator state, so 3x the rounds must not grow the peak materially;
#: 1.5x absorbs allocator noise while still tripping on O(rounds) state.
SERVE_PEAK_RATIO_BOUND = 1.5


def _serve_run(rounds):
    from repro.serve import LiveService
    from repro.simulation.config import SimulationConfig

    config = SimulationConfig(n_sessions=60, warmup_sessions=200, seed=7)
    service = LiveService(
        config, window_ms=10_000.0, sessions_per_round=60, retain_windows=64
    )
    tracemalloc.start()
    start = time.perf_counter()
    service.run_rounds(rounds)
    wall_s = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return service, peak, wall_s


def test_memory_serve_peak_flat_in_run_duration():
    # the run-forever requirement: a service stepped 3x as long must hold
    # the same peak heap — sealed windows are deque-bounded, per-round
    # telemetry is dropped after folding (docs/OBSERVABILITY.md,
    # "Service mode")
    _, peak_short, _ = _serve_run(SERVE_ROUNDS_SHORT)
    service, peak_long, wall_s = _serve_run(SERVE_ROUNDS_LONG)
    ratio = peak_long / peak_short
    health = service.health_document()
    record = write_perf_record(
        "memory_serve",
        wall_s,
        n_sessions=health["sessions"],
        n_chunks=health["chunks"],
        extra={
            "peak_short_mb": round(peak_short / 1e6, 1),
            "peak_long_mb": round(peak_long / 1e6, 1),
            "rounds": SERVE_ROUNDS_LONG,
        },
    )
    print(
        f"\n  memory-serve: {record['wall_s']}s wall, "
        f"{peak_short / 1e6:.1f} MB @ {SERVE_ROUNDS_SHORT} rounds vs "
        f"{peak_long / 1e6:.1f} MB @ {SERVE_ROUNDS_LONG} rounds "
        f"(ratio {ratio:.2f})"
    )
    assert ratio < SERVE_PEAK_RATIO_BOUND, (
        f"live-service peak heap grew {ratio:.2f}x when the run got "
        f"{SERVE_ROUNDS_LONG // SERVE_ROUNDS_SHORT}x longer — service "
        "state is scaling with run duration"
    )
