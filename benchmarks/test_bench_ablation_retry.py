"""Ablation: the ATS open-read-retry timer value.

§4.1-2 take-away: "the timer introduces too much delay for cases where the
content is available on local disk.  Since the timer affects 35% of
chunks, we recommend decreasing the timer for disk accesses."  Sweeping
the timer shows its direct pass-through into disk-hit read latency.
"""

import numpy as np

from ablation_util import run_config
from repro.cdn.server import CdnServerConfig


def disk_read_median(result) -> float:
    reads = [
        c.d_read_ms
        for c in result.dataset.cdn_chunks
        if c.cache_status == "hit_disk"
    ]
    return float(np.median(reads)) if reads else float("nan")


def run_sweep():
    medians = {}
    for timer_ms in (0.0, 5.0, 10.0, 20.0):
        result = run_config(server=CdnServerConfig(retry_timer_ms=timer_ms))
        medians[timer_ms] = disk_read_median(result)
    return medians


def test_bench_ablation_retry_timer(benchmark):
    medians = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("retry timer (ms) | median disk-hit D_read (ms)")
    for timer_ms, median in medians.items():
        print(f"  {timer_ms:6.1f} | {median:8.2f}")
    values = list(medians.values())
    assert all(b > a for a, b in zip(values[:-1], values[1:]))
    # the timer passes through ~1:1 into disk reads
    assert medians[20.0] - medians[0.0] > 15.0
