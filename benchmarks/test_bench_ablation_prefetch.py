"""Ablation: chunk pre-fetching after a session's first cache miss.

§4.1-2 take-away: "the persistence of cache misses could be addressed by
pre-fetching the subsequent chunks of a video session after the first
miss" — plus caching the first chunks of all videos to cut startup misses.
"""

from ablation_util import later_chunk_miss_ratio, run_config


def first_chunk_miss_ratio(result):
    import numpy as np

    first = [c for c in result.dataset.cdn_chunks if c.chunk_id == 0]
    return float(np.mean([c.cache_status == "miss" for c in first]))


def run_comparison():
    base = run_config()
    prefetch = run_config(prefetch_after_miss=True, prefetch_depth=4)
    warmed = run_config(warm_first_chunks=True)
    return {
        "baseline_later_miss": later_chunk_miss_ratio(base),
        "prefetch_later_miss": later_chunk_miss_ratio(prefetch),
        "baseline_first_miss": first_chunk_miss_ratio(base),
        "warmed_first_miss": first_chunk_miss_ratio(warmed),
    }


def test_bench_ablation_prefetch(benchmark):
    metrics = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    for key, value in metrics.items():
        print(f"  {key} = {value:.4f}")
    assert metrics["prefetch_later_miss"] < metrics["baseline_later_miss"]
    assert metrics["warmed_first_miss"] <= metrics["baseline_first_miss"]
