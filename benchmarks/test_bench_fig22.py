"""Bench fig22 — the unpopular-browser rendering penalty.

Paper: Yandex/Vivaldi/Opera/Safari-on-Windows drop far more frames than
the average of everything else, even at good download rates while visible.
"""

from bench_util import run_and_report


def test_bench_fig22(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig22", medium_dataset)
    print("browser (Windows) | mean dropped %")
    for browser, pct in result.series["unpopular_rows"]:
        print(f"  {browser:<12} | {pct:6.2f}")
    print(f"  rest average | {result.series['rest_mean_drop_pct']:6.2f}")
