"""Bench fig03 — workload shape (video-length CCDF, popularity skew).

Paper: long-tailed lengths (10 s .. hours); top 10% of videos draw ~66% of
playbacks.
"""

from bench_util import run_and_report


def test_bench_fig03(benchmark):
    result = run_and_report(benchmark, "fig03")
    share = result.summary["top10pct_playback_share_observed"]
    print(f"paper top-10% share ~0.66 | measured {share:.3f}")
