"""Bench table04 — orgs ranked by share of sessions with CV(SRTT) > 1.

Paper: the top five are all enterprises at ~40-43%; major residential ISPs
sit near 1%.  Expected shape: enterprises head the table and beat the best
residential ISP by a wide factor.
"""

from bench_util import run_and_report


def test_bench_table04(benchmark, medium_dataset):
    result = run_and_report(benchmark, "table04", medium_dataset)
    print("org | high-CV sessions | sessions | %")
    for org, high, total, pct in result.series["org_rows"][:10]:
        print(f"  {org:<14} | {high:5d} | {total:6d} | {pct:5.2f}")
