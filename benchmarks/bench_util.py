"""Helpers shared by the benchmark harness."""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from repro import obs
from repro.analysis.experiments import run_experiment
from repro.analysis.experiments.base import ExperimentResult

#: The repo-root perf trajectory file (see docs/PERFORMANCE.md).
PERF_RECORD_PATH = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_perf.json")
)


def attach_observability(benchmark) -> None:
    """Record the last simulation's observability data in the bench JSON.

    Pulls the most recently completed run's metrics/span capture
    (:func:`repro.obs.last_run`) and stores a compact stage-level
    breakdown in ``benchmark.extra_info``, so BENCH_*.json trajectories
    carry per-stage counters and wall-clock spans alongside the timing
    numbers.  Zero-valued counters and histograms are dropped — the full
    key set is documented in docs/OBSERVABILITY.md, not re-serialized per
    bench.  A bench that only re-analyzes a cached dataset attributes its
    capture to the shared fixture simulation (the last one that ran in
    this process); benches that never simulated record nothing.
    """
    capture = obs.last_run()
    if capture is None:
        return
    metrics = capture["metrics"]
    benchmark.extra_info["obs_counters"] = {
        name: value for name, value in metrics["counters"].items() if value
    }
    benchmark.extra_info["obs_gauges"] = metrics["gauges"]
    benchmark.extra_info["obs_histograms"] = {
        name: payload
        for name, payload in metrics["histograms"].items()
        if payload["count"]
    }
    benchmark.extra_info["obs_spans"] = capture["spans"]


def span_totals() -> Dict[str, float]:
    """Per-phase wall-clock totals (seconds) from the last run's obs spans.

    Collapses the (name, parent) aggregate of :func:`repro.obs.last_run`
    down to per-phase totals — the breakdown BENCH_perf.json records for
    each timing entry.  Empty when no instrumented run has completed.
    """
    capture = obs.last_run()
    if capture is None:
        return {}
    totals: Dict[str, float] = {}
    for entry in capture["spans"]:
        totals[entry["name"]] = totals.get(entry["name"], 0.0) + entry["total_s"]
    return {name: round(total, 6) for name, total in sorted(totals.items())}


def write_perf_record(
    scenario: str,
    wall_s: float,
    *,
    n_sessions: int,
    n_chunks: int,
    label: str = "run",
    path: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Append one timing record for *scenario* to ``BENCH_perf.json``.

    The file is the repo's perf-regression trajectory: a map from scenario
    name to the chronological list of recorded runs, each carrying the best
    wall time, derived throughput, and the per-phase breakdown from the obs
    spans (docs/OBSERVABILITY.md).  CI's perf-smoke job re-runs the pinned
    workload, appends its entry, and uploads the file as an artifact, so a
    hot-path regression shows up as a visible step in the time series.
    """
    target = path or PERF_RECORD_PATH
    try:
        with open(target, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}
    record: Dict[str, Any] = {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "wall_s": round(wall_s, 4),
        "n_sessions": n_sessions,
        "n_chunks": n_chunks,
        "sessions_per_s": round(n_sessions / wall_s, 1),
        "chunks_per_s": round(n_chunks / wall_s, 1),
        "spans": span_totals(),
    }
    if extra:
        record.update(extra)
    payload.setdefault(scenario, []).append(record)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record


def run_and_report(benchmark, experiment_id: str, *args, **kwargs) -> ExperimentResult:
    """Benchmark one experiment run, assert its checks, print its report.

    ``rounds=1`` because an experiment is a batch analysis job, not a
    microbenchmark — we want its wall-clock cost and its output, not a
    timing distribution.
    """
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, *args),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    attach_observability(benchmark)
    print()
    print(result.format_report())
    assert result.all_checks_passed, result.format_report()
    return result
