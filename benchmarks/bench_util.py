"""Helpers shared by the benchmark harness."""

from __future__ import annotations

from repro.analysis.experiments import run_experiment
from repro.analysis.experiments.base import ExperimentResult


def run_and_report(benchmark, experiment_id: str, *args, **kwargs) -> ExperimentResult:
    """Benchmark one experiment run, assert its checks, print its report.

    ``rounds=1`` because an experiment is a batch analysis job, not a
    microbenchmark — we want its wall-clock cost and its output, not a
    timing distribution.
    """
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, *args),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.format_report())
    assert result.all_checks_passed, result.format_report()
    return result
