"""Helpers shared by the benchmark harness."""

from __future__ import annotations

from repro import obs
from repro.analysis.experiments import run_experiment
from repro.analysis.experiments.base import ExperimentResult


def attach_observability(benchmark) -> None:
    """Record the last simulation's observability data in the bench JSON.

    Pulls the most recently completed run's metrics/span capture
    (:func:`repro.obs.last_run`) and stores a compact stage-level
    breakdown in ``benchmark.extra_info``, so BENCH_*.json trajectories
    carry per-stage counters and wall-clock spans alongside the timing
    numbers.  Zero-valued counters and histograms are dropped — the full
    key set is documented in docs/OBSERVABILITY.md, not re-serialized per
    bench.  A bench that only re-analyzes a cached dataset attributes its
    capture to the shared fixture simulation (the last one that ran in
    this process); benches that never simulated record nothing.
    """
    capture = obs.last_run()
    if capture is None:
        return
    metrics = capture["metrics"]
    benchmark.extra_info["obs_counters"] = {
        name: value for name, value in metrics["counters"].items() if value
    }
    benchmark.extra_info["obs_gauges"] = metrics["gauges"]
    benchmark.extra_info["obs_histograms"] = {
        name: payload
        for name, payload in metrics["histograms"].items()
        if payload["count"]
    }
    benchmark.extra_info["obs_spans"] = capture["spans"]


def run_and_report(benchmark, experiment_id: str, *args, **kwargs) -> ExperimentResult:
    """Benchmark one experiment run, assert its checks, print its report.

    ``rounds=1`` because an experiment is a batch analysis job, not a
    microbenchmark — we want its wall-clock cost and its output, not a
    timing distribution.
    """
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, *args),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    attach_observability(benchmark)
    print()
    print(result.format_report())
    assert result.all_checks_passed, result.format_report()
    return result
