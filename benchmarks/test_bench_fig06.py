"""Bench fig06 — cache performance vs video popularity rank.

Paper: miss percentage climbs steeply for unpopular ranks; even hit-only
server delay grows with rank (disk reads of cold content).
"""

from bench_util import run_and_report


def test_bench_fig06(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig06", medium_dataset)
    print("rank>=x | miss % | hit-only median delay (ms)")
    latencies = dict(result.series["hit_latency_ms_vs_rank_tail"])
    for x, miss_pct in result.series["miss_pct_vs_rank_tail"]:
        print(f"  {x:5d} | {miss_pct:6.2f} | {latencies.get(x, float('nan')):6.2f}")
