"""Perf-smoke regression gate: pinned small workload under a wall budget.

Not a paper artifact — the CI `perf-smoke` job runs exactly this bench on
every push.  It simulates a pinned small workload (fixed session count and
seed, so the work is identical run-to-run), appends the timing to the
``BENCH_perf.json`` trajectory (uploaded as a CI artifact), and fails if
the best-of-three wall time blows through a generous absolute budget.

The budget is deliberately loose — CI runners are slow and noisy, and this
gate exists to catch *order-of-magnitude* hot-path regressions (an
accidentally quadratic loop, a lost fast path), not single-digit-percent
drift.  Percent-level tracking comes from the recorded trajectory, where a
regression shows up as a step between consecutive entries for the same
scenario.  docs/PERFORMANCE.md documents the workflow.
"""

from __future__ import annotations

import pytest

from bench_util import attach_observability, write_perf_record
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import simulate

pytestmark = pytest.mark.bench

N_SESSIONS = 120
SEED = 7
#: absolute best-of-three budget: ~0.5 s on a 2024 laptop, so 30 s only
#: trips on a genuine hot-path catastrophe, never on CI runner noise
WALL_BUDGET_S = 30.0


def run_simulation(engine: str = "event"):
    return simulate(
        SimulationConfig(
            n_sessions=N_SESSIONS, warmup_sessions=0, seed=SEED, engine=engine
        )
    )


@pytest.mark.parametrize("engine", ["event", "fleet"])
def test_perf_smoke_under_budget(benchmark, engine):
    result = benchmark.pedantic(run_simulation, args=(engine,), rounds=3, iterations=1)
    assert result.dataset.n_sessions == N_SESSIONS
    attach_observability(benchmark)
    best_s = benchmark.stats.stats.min
    record = write_perf_record(
        "perf_smoke",
        best_s,
        n_sessions=N_SESSIONS,
        n_chunks=result.dataset.n_chunks,
        label=f"run-{engine}",
    )
    print(f"\n  perf-smoke[{engine}]: {record['wall_s']}s wall, "
          f"{record['sessions_per_s']} sessions/s, spans={record['spans']}")
    assert best_s < WALL_BUDGET_S, (
        f"perf smoke exceeded wall budget: {best_s:.2f}s >= {WALL_BUDGET_S}s "
        f"(see BENCH_perf.json trajectory)"
    )


def test_perf_smoke_engines_identical():
    """The cross-engine divergence gate CI runs alongside the timing.

    Engine choice is an execution knob (docs/PERFORMANCE.md): the fleet
    engine must reproduce the event loop's telemetry record for record on
    the pinned smoke workload, or the perf job fails before any timing
    comparison matters.
    """
    event = run_simulation("event").dataset.sorted()
    fleet = run_simulation("fleet").dataset.sorted()
    assert event == fleet, "fleet engine diverged from the event loop"
