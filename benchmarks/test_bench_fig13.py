"""Bench fig13 — early-vs-late loss case study.

Paper: case #1 (0.75% session loss, concentrated in chunk 0) rebuffers;
case #2 (22% session loss after a 29.8 s buffer was built) plays smoothly.
The absolute rates differ on our substrate; the inversion is the result.
"""

from bench_util import run_and_report


def test_bench_fig13(benchmark):
    result = run_and_report(benchmark, "fig13")
    s = result.summary
    print(
        f"case1: retx {s['case1_session_retx_pct']:.1f}%, "
        f"rebuffer {s['case1_total_rebuffer_ms']:.0f} ms | "
        f"case2: retx {s['case2_session_retx_pct']:.1f}%, "
        f"rebuffer {s['case2_total_rebuffer_ms']:.0f} ms "
        f"(buffer at first loss {s['case2_buffer_at_first_loss_ms']/1000:.1f} s)"
    )
