"""Bench: sharded parallel runner vs the serial simulator on one workload.

Times the same ≥5k-session collection period through the classic serial
``Simulator`` and through ``ParallelSimulator(workers=4)``, asserting both
that the outputs agree (the determinism contract, at benchmark scale) and
that sharding pays for itself: on a multi-core host the sharded run must
not be slower than the serial one; on a single-core host (e.g. a 1-vCPU CI
runner, where parallelism cannot win) it must stay within a bounded
process/merge overhead of serial.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.driver import Simulator
from repro.simulation.parallel import ParallelSimulator

pytestmark = pytest.mark.bench

N_SESSIONS = 5000
WORKERS = 4
#: slack allowed on hosts where workers just time-slice one core: the
#: per-shard plan regeneration and result pickling cannot be hidden there,
#: so this only guards against pathological (not constant-factor) slowdowns
SINGLE_CORE_OVERHEAD = 2.5


def _config() -> SimulationConfig:
    return SimulationConfig(n_sessions=N_SESSIONS, warmup_sessions=0, seed=42)


def test_bench_parallel_vs_serial(benchmark):
    started = time.perf_counter()
    serial = Simulator(_config()).run()
    serial_s = time.perf_counter() - started

    parallel = benchmark.pedantic(
        ParallelSimulator(_config(), workers=WORKERS).run,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    parallel_s = benchmark.stats.stats.mean

    assert parallel.dataset == serial.dataset.sorted()
    assert sum(r.sessions for r in parallel.shard_reports) == N_SESSIONS

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(
        f"\n  serial {serial_s:.2f}s vs {WORKERS} shards {parallel_s:.2f}s "
        f"({speedup:.2f}x) on {cores} core(s)"
    )
    for report in parallel.shard_reports:
        print(
            f"  shard {report.shard_index}: {report.sessions} sessions / "
            f"{report.n_servers} servers in {report.wall_time_s:.2f}s"
        )
    if cores >= 2:
        assert parallel_s <= serial_s, (
            f"sharded run slower than serial on {cores} cores: "
            f"{parallel_s:.2f}s > {serial_s:.2f}s"
        )
    else:
        assert parallel_s <= SINGLE_CORE_OVERHEAD * serial_s, (
            f"sharding overhead beyond {SINGLE_CORE_OVERHEAD}x on one core: "
            f"{parallel_s:.2f}s vs {serial_s:.2f}s"
        )
