"""Ablation: server-side pacing vs slow-start burst loss.

§4.2-3 take-away: "Due to the bursty nature of packet losses in TCP slow
start caused by the exponential growth, the first chunk has the highest
per-chunk retransmission rate.  We suggest server-side pacing solutions
[Trickle] to work around this issue."
"""

from ablation_util import first_chunk_retx_pct, run_config


def run_comparison():
    return {
        "standard": first_chunk_retx_pct(run_config()),
        "paced": first_chunk_retx_pct(run_config(tcp_paced=True)),
    }


def test_bench_ablation_pacing(benchmark):
    rates = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(
        f"first-chunk retx: standard {rates['standard']:.2f}% "
        f"vs paced {rates['paced']:.2f}%"
    )
    assert rates["paced"] < rates["standard"]
