"""Ablation: client→server mapping strategy.

§4.1-3 take-away: cache-focused routing causes the load-performance
paradox; "distributing only the top 10% of popular videos across servers
can balance the load".  Expected: cache-focused minimizes misses but
concentrates load; popularity partitioning trades some cache efficiency
for balance; random mapping is worst on misses.
"""

from ablation_util import miss_ratio, run_config, server_load_imbalance


def run_comparison():
    rows = {}
    for strategy in ("cache-focused", "popularity-partitioned", "random"):
        result = run_config(mapping_strategy=strategy)
        rows[strategy] = (miss_ratio(result), server_load_imbalance(result))
    return rows


def test_bench_ablation_mapping(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("strategy | miss ratio | load imbalance (CV)")
    for strategy, (miss, imbalance) in rows.items():
        print(f"  {strategy:<22} | {miss:.4f} | {imbalance:.3f}")
    assert rows["cache-focused"][0] < rows["random"][0]
    assert rows["popularity-partitioned"][1] < rows["cache-focused"][1]
    assert rows["popularity-partitioned"][0] < rows["random"][0]
