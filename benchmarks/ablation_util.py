"""Helpers for ablation benchmarks: small simulations with one knob varied."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.simulation.config import SimulationConfig
from repro.simulation.driver import SimulationResult, simulate

ABLATION_SESSIONS = 600
ABLATION_WARMUP = 1200
ABLATION_SEED = 11


def ablation_config(**overrides) -> SimulationConfig:
    """The shared small configuration with the given knob overridden."""
    return SimulationConfig(
        n_sessions=ABLATION_SESSIONS,
        warmup_sessions=ABLATION_WARMUP,
        seed=ABLATION_SEED,
        **overrides,
    )


def miss_ratio(result: SimulationResult) -> float:
    """Measured-window cache miss ratio."""
    chunks = result.dataset.cdn_chunks
    if not chunks:
        return 0.0
    return float(np.mean([c.cache_status == "miss" for c in chunks]))


def later_chunk_miss_ratio(result: SimulationResult) -> float:
    """Miss ratio among chunks after the first (prefetch target)."""
    later = [c for c in result.dataset.cdn_chunks if c.chunk_id > 0]
    if not later:
        return 0.0
    return float(np.mean([c.cache_status == "miss" for c in later]))


def first_chunk_retx_pct(result: SimulationResult) -> float:
    """Mean first-chunk retransmission rate (%), from TCP counters."""
    rates = []
    for session in result.dataset.sessions():
        pairs = session.chunk_retx_counts()
        if not pairs or not session.chunks:
            continue
        chunk_id, retx = pairs[0]
        if chunk_id != 0:
            continue
        segments = max(1, session.chunks[0].cdn.chunk_bytes // 1460)
        rates.append(100.0 * retx / segments)
    return float(np.mean(rates)) if rates else 0.0


def server_load_imbalance(result: SimulationResult) -> float:
    """CV of per-server request counts (lower = better balanced)."""
    counts: Dict[str, int] = {}
    for chunk in result.dataset.cdn_chunks:
        counts[chunk.server_id] = counts.get(chunk.server_id, 0) + 1
    values = np.asarray(list(counts.values()), dtype=float)
    if len(values) < 2 or values.mean() == 0:
        return 0.0
    return float(values.std() / values.mean())


def qoe_tuple(result: SimulationResult):
    """(median bitrate kbps, rebuffer-session fraction, median startup ms)."""
    sessions = result.dataset.sessions()
    bitrates = [s.avg_bitrate_kbps for s in sessions]
    rebuffer = [s.rebuffer_rate > 0 for s in sessions]
    startups = [s.startup_delay_ms for s in sessions if s.startup_delay_ms]
    return (
        float(np.median(bitrates)),
        float(np.mean(rebuffer)),
        float(np.median(startups)) if startups else float("nan"),
    )


_CACHE: Dict[str, SimulationResult] = {}


def run_config(**overrides) -> SimulationResult:
    """Simulate (once per distinct override set, cached for the session).

    Keys by repr so unhashable overrides (nested config dataclasses) work.
    """
    key = repr(sorted(overrides.items(), key=lambda kv: kv[0]))
    if key not in _CACHE:
        _CACHE[key] = simulate(ablation_config(**overrides))
    return _CACHE[key]
