"""Bench fig18 — first-chunk D_FB premium in equivalent conditions.

Paper: the first chunk's median D_FB is ~300 ms above later chunks even
after filtering to loss-free, warm-window, similar-SRTT, cache-hit chunks.
"""

from bench_util import run_and_report


def test_bench_fig18(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig18", medium_dataset)
    s = result.summary
    print(
        f"paper first-chunk premium ~300 ms | measured {s['median_gap_ms']:.0f} ms "
        f"({s['n_first']:.0f} first / {s['n_other']:.0f} other chunks)"
    )
