"""Bench fig12 — re-buffering rate vs retransmission rate.

Paper: re-buffering generally climbs with loss rate (0..10% retx ->
0..~3% rebuffering), with noise because loss position matters too.
"""

from bench_util import run_and_report


def test_bench_fig12(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig12", medium_dataset)
    print("retx % bin | mean rebuffer % | n sessions")
    for center, mean, n in result.series["retx_pct_center__rebuffer_pct__n"]:
        print(f"  {center:6.1f} | {mean:8.3f} | {n}")
