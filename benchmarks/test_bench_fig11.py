"""Bench fig11 — loss vs no-loss sessions.

Paper: session-length and bitrate distributions nearly identical between
the groups; the re-buffering distribution separates (loss sessions worse).
"""

from bench_util import run_and_report


def test_bench_fig11(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig11", medium_dataset)
    s = result.summary
    print(
        f"chunks median loss/no-loss: {s['median_chunks_loss']:.0f}/"
        f"{s['median_chunks_no_loss']:.0f}; bitrate median: "
        f"{s['median_bitrate_loss']:.0f}/{s['median_bitrate_no_loss']:.0f} kbps; "
        f"rebuffer fraction: {s['rebuffer_fraction_loss']:.3f}/"
        f"{s['rebuffer_fraction_no_loss']:.3f}"
    )
