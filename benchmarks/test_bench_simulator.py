"""Bench: raw simulator throughput (sessions simulated per second).

Not a paper artifact — an engineering benchmark guarding against
performance regressions in the event loop / TCP model hot path.
"""

from bench_util import attach_observability, write_perf_record
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import simulate

N_SESSIONS = 300


def run_simulation():
    return simulate(SimulationConfig(n_sessions=N_SESSIONS, warmup_sessions=0, seed=42))


def test_bench_simulator_throughput(benchmark):
    result = benchmark.pedantic(run_simulation, rounds=3, iterations=1)
    assert result.dataset.n_sessions == N_SESSIONS
    attach_observability(benchmark)
    write_perf_record(
        "medium",
        benchmark.stats.stats.min,
        n_sessions=N_SESSIONS,
        n_chunks=result.dataset.n_chunks,
    )
    mean_s = benchmark.stats.stats.mean
    print(f"\n  {N_SESSIONS / mean_s:.0f} sessions/s "
          f"({result.dataset.n_chunks / mean_s:.0f} chunks/s)")
