"""Large-tier bench: 10k-session fleet-scale throughput, both engines.

Not a paper artifact and not part of the default bench sweep — 10k
sessions take minutes, so the tier is opt-in behind ``REPRO_BENCH_LARGE=1``
(CI's scheduled perf job sets it and uploads ``BENCH_perf.json``).  This
is the scale the fleet engine exists for: per-server cohort stepping
amortizes scheduling across thousands of concurrent sessions, where the
event loop pays a global heap operation per chunk.  Each engine records
its own trajectory entry, so the event-vs-fleet gap is read straight off
the ``large`` scenario's history.
"""

from __future__ import annotations

import os

import pytest

from bench_util import attach_observability, write_perf_record
from repro.simulation.config import SimulationConfig
from repro.simulation.driver import simulate

pytestmark = [
    pytest.mark.bench,
    pytest.mark.skipif(
        os.environ.get("REPRO_BENCH_LARGE") != "1",
        reason="large tier is opt-in: set REPRO_BENCH_LARGE=1",
    ),
]

N_SESSIONS = 10_000
SEED = 7


def run_simulation(engine: str):
    return simulate(
        SimulationConfig(
            n_sessions=N_SESSIONS, warmup_sessions=0, seed=SEED, engine=engine
        )
    )


@pytest.mark.parametrize("engine", ["event", "fleet"])
def test_bench_large_throughput(benchmark, engine):
    result = benchmark.pedantic(run_simulation, args=(engine,), rounds=1, iterations=1)
    assert result.dataset.n_sessions == N_SESSIONS
    attach_observability(benchmark)
    record = write_perf_record(
        "large",
        benchmark.stats.stats.min,
        n_sessions=N_SESSIONS,
        n_chunks=result.dataset.n_chunks,
        label=f"run-{engine}",
    )
    print(f"\n  large[{engine}]: {record['wall_s']}s wall, "
          f"{record['chunks_per_s']} chunks/s, spans={record['spans']}")
