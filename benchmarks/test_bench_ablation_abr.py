"""Ablation: ABR families, and outlier screening (§4.3's recommendation).

Rate-based ABR chases throughput (highest bitrate, most rebuffering risk);
buffer-based is conservative (lowest bitrate, fewest stalls); hybrid sits
between.  Screening download-stack outliers out of the throughput estimate
must not hurt bitrate materially (it only removes impossible samples).
"""

from ablation_util import qoe_tuple, run_config


def run_comparison():
    rows = {}
    for abr in ("rate", "buffer", "hybrid"):
        rows[abr] = qoe_tuple(run_config(abr_name=abr))
    rows["rate+screen"] = qoe_tuple(
        run_config(abr_name="rate", abr_screen_outliers=True)
    )
    return rows


def test_bench_ablation_abr(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("abr | median bitrate kbps | rebuffer fraction | median startup ms")
    for abr, (bitrate, rebuffer, startup) in rows.items():
        print(f"  {abr:<12} | {bitrate:8.0f} | {rebuffer:.4f} | {startup:8.0f}")
    assert rows["rate"][0] > rows["buffer"][0]  # rate ABR reaches higher quality
    assert rows["buffer"][1] <= rows["rate"][1] + 0.01  # ... buffer ABR stalls least
    assert rows["buffer"][0] <= rows["hybrid"][0] <= rows["rate"][0]
    assert rows["rate+screen"][0] >= 0.7 * rows["rate"][0]
