"""Bench fig07 — startup delay vs first-chunk SRTT.

Paper: startup grows roughly linearly with network RTT (slow-start rounds
each cost one RTT).
"""

from bench_util import run_and_report


def test_bench_fig07(benchmark, medium_dataset):
    result = run_and_report(benchmark, "fig07", medium_dataset)
    rows = result.series["rows_center_mean_median_q25_q75_n"]
    print("srtt bin center (ms) | mean startup (ms) | n")
    for center, mean, _, _, _, n in rows:
        print(f"  {center:8.1f} | {mean:8.1f} | {n}")
