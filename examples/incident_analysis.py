#!/usr/bin/env python
"""Incident what-if analysis: scenarios + A/B comparison.

Runs the three canned incident scenarios (flash crowd, cache flush,
backend brownout) against a warmed baseline fleet and quantifies the QoE
movement with bootstrap confidence intervals — the operational loop the
paper's findings are meant to drive.

Run:  python examples/incident_analysis.py [scenario]
"""

import sys

from repro.core.comparison import compare_datasets
from repro.core.localization import diagnose_dataset
from repro.simulation.scenarios import SCENARIOS, run_scenario


def analyze(name: str) -> None:
    print(f"=== scenario: {name} ===")
    outcome = run_scenario(name)
    report = compare_datasets(outcome.baseline, outcome.incident)
    print(report)
    moved = report.significant_changes
    if moved:
        print("significant movements: " + ", ".join(d.metric for d in moved))
    baseline_loc = diagnose_dataset(outcome.baseline)
    incident_loc = diagnose_dataset(outcome.incident)
    print("bottleneck shift (share of chunks, baseline -> incident):")
    for location in sorted(baseline_loc):
        before = 100.0 * baseline_loc[location]
        after = 100.0 * incident_loc.get(location, 0.0)
        if max(before, after) >= 0.5:
            print(f"  {location:<22} {before:5.1f}% -> {after:5.1f}%")
    print()


def main() -> None:
    names = sys.argv[1:] if len(sys.argv) > 1 else sorted(SCENARIOS)
    for name in names:
        analyze(name)


if __name__ == "__main__":
    main()
