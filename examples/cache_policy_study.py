#!/usr/bin/env python
"""Cache-policy and prefetching study (paper §4.1 take-aways).

Compares eviction policies on a popularity-skewed stream under capacity
pressure, then measures the paper's two operational fixes on the full
simulator: pre-fetching subsequent chunks after a session's first miss,
and pre-warming every title's first chunk.

Run:  python examples/cache_policy_study.py
"""

import numpy as np

from repro import SimulationConfig, simulate
from repro.cdn.cache import TwoLevelCache
from repro.workload.popularity import PopularityModel


def policy_study() -> None:
    print("Eviction-policy comparison (Zipf stream, capacity = 1.5% of footprint)")
    n_objects, n_requests, obj_bytes = 4000, 60_000, 1000
    popularity = PopularityModel(n_videos=n_objects, alpha=0.9)
    requests = popularity.sample_ranks(np.random.default_rng(1), n_requests)
    print("  policy       | hit ratio")
    for name in ("fifo", "lru", "gdsize", "perfect-lfu"):
        cache = TwoLevelCache(60 * obj_bytes, 400 * obj_bytes, policy_name=name)
        hits = 0
        for key in requests:
            if cache.lookup(int(key), obj_bytes).is_hit:
                hits += 1
            else:
                cache.admit(int(key), obj_bytes)
        print(f"  {name:<12} | {hits / n_requests:.4f}")


def miss_stats(result):
    chunks = result.dataset.cdn_chunks
    first = [c for c in chunks if c.chunk_id == 0]
    later = [c for c in chunks if c.chunk_id > 0]
    return (
        float(np.mean([c.cache_status == "miss" for c in first])),
        float(np.mean([c.cache_status == "miss" for c in later])),
    )


def operational_fixes() -> None:
    print("\nOperational fixes on the full simulator (800 sessions each):")
    base_config = SimulationConfig(n_sessions=800, warmup_sessions=1600, seed=23)
    baseline = simulate(base_config)
    prefetch = simulate(
        base_config.with_overrides(prefetch_after_miss=True, prefetch_depth=4)
    )
    warmed = simulate(base_config.with_overrides(warm_first_chunks=True))

    base_first, base_later = miss_stats(baseline)
    _, prefetch_later = miss_stats(prefetch)
    warm_first, _ = miss_stats(warmed)
    print(f"  baseline:    first-chunk miss {base_first:.3f}, later-chunk miss {base_later:.3f}")
    print(f"  +prefetch:   later-chunk miss {prefetch_later:.3f} "
          f"({100 * (1 - prefetch_later / max(base_later, 1e-9)):.0f}% fewer)")
    print(f"  +warm-first: first-chunk miss {warm_first:.3f} "
          f"({100 * (1 - warm_first / max(base_first, 1e-9)):.0f}% fewer)")


def main() -> None:
    policy_study()
    operational_fixes()


if __name__ == "__main__":
    main()
