#!/usr/bin/env python
"""Quickstart: simulate a collection period and run the paper's pipeline.

Simulates a small production-like trace (clients -> CDN -> telemetry),
applies the §3 proxy filter, prints headline QoE, and evaluates all
thirteen Table-1 findings end to end.

Run:  python examples/quickstart.py [n_sessions]
"""

import sys

from repro import SimulationConfig, simulate
from repro.core import evaluate_key_findings, filter_proxies, qoe


def main() -> None:
    n_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    print(f"Simulating {n_sessions} sessions (plus cache warmup)...")
    result = simulate(
        SimulationConfig(n_sessions=n_sessions, warmup_sessions=2 * n_sessions, seed=7)
    )
    print(
        f"  telemetry: {result.dataset.n_sessions} sessions, "
        f"{result.dataset.n_chunks} chunks, "
        f"{len(result.dataset.tcp_snapshots)} tcp_info snapshots"
    )

    print("\nApplying the proxy filter (paper §3)...")
    dataset, report = filter_proxies(result.dataset)
    print(
        f"  kept {report.n_kept_sessions}/{report.n_input_sessions} sessions "
        f"({100 * report.kept_fraction:.1f}%); removal reasons: "
        f"{report.removal_reasons()}"
    )

    print("\nHeadline QoE:")
    for key, value in qoe.summarize(dataset).items():
        print(f"  {key} = {value:.4g}")

    print("\nTable-1 key findings:")
    pop_locations = {p.pop_id: p.location for p in result.deployment.pops}
    findings = evaluate_key_findings(dataset, pop_locations)
    print(findings)
    if not findings.all_passed and n_sessions < 6000:
        print(
            "\nNote: population-scale findings (NET-2's per-org session "
            "minimums, CLI-5's weak confound) need volume — run with 6000+ "
            "sessions to reproduce all 13, as the test suite does."
        )


if __name__ == "__main__":
    main()
