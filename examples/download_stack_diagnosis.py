#!/usr/bin/env python
"""Diagnose client download-stack problems from two-sided telemetry.

The paper's §4.3 showcase: with only player-side data, a chunk buffered in
the browser/Flash stack looks like a network problem (huge first-byte
delay).  Joining CDN-side TCP state exposes it.  This example:

1. runs Eq. 4 (transient buffering outlier detection) over a simulated
   trace and validates the detections against simulator ground truth;
2. computes the Eq. 5 persistent bound and prints the Table-5-style
   platform ranking;
3. shows what a throughput-based ABR would have concluded with and
   without the paper's outlier screening.

Run:  python examples/download_stack_diagnosis.py
"""

import numpy as np

from repro import SimulationConfig, simulate
from repro.client.abr import ChunkObservation, RateBasedAbr
from repro.core import downstack, filter_proxies


def main() -> None:
    print("Simulating 4000 sessions...")
    result = simulate(
        SimulationConfig(n_sessions=4000, warmup_sessions=6000, seed=13)
    )
    dataset, _ = filter_proxies(result.dataset)

    # --- Eq. 4: transient buffering events -------------------------------
    flagged = downstack.detect_transient_outliers_dataset(dataset)
    n_flagged = sum(len(chunks) for chunks in flagged.values())
    truth = {
        (t.session_id, t.chunk_id)
        for t in dataset.ground_truth
        if t.transient_ds
    }
    flagged_keys = {
        (sid, c.chunk_id) for sid, chunks in flagged.items() for c in chunks
    }
    true_positives = len(flagged_keys & truth)
    print(f"\nEq. 4 transient detection: {n_flagged} chunks flagged "
          f"in {len(flagged)} sessions")
    if flagged_keys:
        print(f"  precision vs ground truth: {true_positives / len(flagged_keys):.2f} "
              f"({len(truth)} true events in the trace)")

    # --- Eq. 5: persistent platform latency ------------------------------
    rows = downstack.platform_ds_table(dataset, min_chunks=30)
    rows.sort(key=lambda r: r.expected_ds_ms, reverse=True)
    print("\nEq. 5 platform ranking (Table 5 reproduction, by per-chunk burden):")
    print("  os / browser     | mean DS (ms) | nonzero frac | burden (ms/chunk)")
    for row in rows[:8]:
        print(
            f"  {row.os:>7} / {row.browser:<9} | {row.mean_ds_ms:9.1f} | "
            f"{row.nonzero_fraction:12.3f} | {row.expected_ds_ms:8.1f}"
        )

    # --- ABR over/under-shooting demo ------------------------------------
    print("\nABR throughput estimation right after a buffered chunk:")
    # pick a burst with enough preceding chunks for the ABR window
    session = None
    burst_id = None
    for candidate in dataset.sessions():
        if candidate.session_id not in flagged:
            continue
        chunk_id = flagged[candidate.session_id][0].chunk_id
        if chunk_id >= 3:
            session, burst_id = candidate, chunk_id
            break
    if session is None:
        print("  (no suitably placed burst in this trace)")
        return
    ladder = tuple(sorted({int(c.player.bitrate_kbps) for c in session.chunks}))
    # Instantaneous-rate ABRs (bytes / D_LB) are the burst-vulnerable kind
    # the paper's over-shooting discussion targets.
    plain = RateBasedAbr(ladder or (1000,), use_instantaneous=True)
    screened = RateBasedAbr(
        plain.ladder, use_instantaneous=True, screen_outliers=True
    )
    # Feed the window the ABR would hold at the decision right after the
    # burst — that is where the naive estimate over-shoots.
    for chunk in session.chunks:
        if chunk.chunk_id > burst_id:
            break
        observation = ChunkObservation(
            bitrate_kbps=chunk.player.bitrate_kbps,
            dfb_ms=chunk.player.dfb_ms,
            dlb_ms=chunk.player.dlb_ms,
            chunk_bytes=chunk.cdn.chunk_bytes,
        )
        plain.observe(observation)
        screened.observe(observation)
    print(f"  naive estimate:    {plain.estimate_kbps():8.0f} kbps")
    print(f"  screened estimate: {screened.estimate_kbps():8.0f} kbps")
    print("  (the naive window still contains the impossible burst sample)")


if __name__ == "__main__":
    main()
