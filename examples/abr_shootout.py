#!/usr/bin/env python
"""ABR shootout: rate-based vs buffer-based vs hybrid on the same workload.

The paper's findings feed ABR design (start bitrate, outlier screening,
buffer depth); this example compares the three classic families the
related work describes on identical simulated conditions.

Run:  python examples/abr_shootout.py
"""

import numpy as np

from repro import SimulationConfig, simulate


def evaluate(abr_name: str, screen: bool = False):
    result = simulate(
        SimulationConfig(
            n_sessions=1200,
            warmup_sessions=2400,
            seed=17,
            abr_name=abr_name,
            abr_screen_outliers=screen,
        )
    )
    sessions = result.dataset.sessions()
    startups = [s.startup_delay_ms for s in sessions if s.startup_delay_ms]
    return {
        "median_bitrate_kbps": float(np.median([s.avg_bitrate_kbps for s in sessions])),
        "rebuffer_session_pct": 100.0 * float(
            np.mean([s.rebuffer_rate > 0 for s in sessions])
        ),
        "median_startup_ms": float(np.median(startups)),
        "mean_rebuffer_rate_pct": 100.0 * float(
            np.mean([s.rebuffer_rate for s in sessions])
        ),
    }


def main() -> None:
    contenders = [
        ("rate", False),
        ("rate", True),  # with the paper's §4.3 outlier screening
        ("buffer", False),
        ("hybrid", False),
    ]
    print("abr            | bitrate kbps | startup ms | rebuf sessions % | rebuf rate %")
    for abr_name, screen in contenders:
        label = abr_name + ("+screen" if screen else "")
        print(f"running {label}...", end="", flush=True)
        metrics = evaluate(abr_name, screen)
        print(
            f"\r{label:<14} | {metrics['median_bitrate_kbps']:10.0f} | "
            f"{metrics['median_startup_ms']:8.0f} | "
            f"{metrics['rebuffer_session_pct']:14.2f} | "
            f"{metrics['mean_rebuffer_rate_pct']:10.3f}"
        )
    print(
        "\nReading: rate-based chases throughput (quality), buffer-based "
        "protects continuity (stalls), hybrid balances; screening removes "
        "download-stack bursts from the estimate."
    )


if __name__ == "__main__":
    main()
