#!/usr/bin/env python
"""Network-side audit: who suffers persistent latency problems, and why.

Reproduces the paper's §4.2 operator workflow on a simulated trace:

1. per-session srtt_min / CV(SRTT) extraction from tcp_info snapshots;
2. the Table-4 ranking — which organizations have wildly variable paths;
3. the Fig. 9 tail analysis — persistent high-latency /24 prefixes,
   split into far-away international clients vs nearby enterprises
   (the ones extra PoPs would NOT fix).

Run:  python examples/enterprise_latency_audit.py
"""

import numpy as np

from repro import SimulationConfig, simulate
from repro.core import filter_proxies, netdiag, persistence
from repro.core.decomposition import session_min_rtt


def main() -> None:
    print("Simulating 6000 sessions...")
    result = simulate(SimulationConfig(n_sessions=6000, warmup_sessions=6000, seed=31))
    dataset, _ = filter_proxies(result.dataset)
    sessions = dataset.sessions()

    baselines = [m for m in (session_min_rtt(s) for s in sessions) if m is not None]
    print(
        f"\nBaseline latency across {len(baselines)} sessions: "
        f"median {np.median(baselines):.0f} ms, p90 {np.percentile(baselines, 90):.0f} ms, "
        f"share above 100 ms: {np.mean([b > 100 for b in baselines]):.3f}"
    )

    print("\nTable-4 ranking — sessions with CV(SRTT) > 1 per organization:")
    print("  org            | sessions | % high-CV")
    for row in netdiag.org_cv_table(dataset, min_sessions=30)[:8]:
        print(f"  {row.org:<14} | {row.n_sessions:6d} | {row.percentage:6.2f}")

    print("\nFig. 9 tail analysis — persistent tail-latency prefixes:")
    pop_locations = {p.pop_id: p.location for p in result.deployment.pops}
    tail = persistence.tail_latency_prefixes(dataset, pop_locations)
    print(f"  persistent prefixes: {tail.n_persistent}")
    print(f"  outside the US: {100 * tail.non_us_fraction:.0f}% (distance-limited)")
    if tail.us_distances_km:
        close = np.mean([d <= 200 for d in tail.us_distances_km])
        print(
            f"  US prefixes within 200 km of their PoP: {100 * close:.0f}% — "
            f"of those, {100 * tail.us_enterprise_close_fraction:.0f}% are "
            f"enterprises (provisioning more servers would not help them)"
        )


if __name__ == "__main__":
    main()
