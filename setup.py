"""Setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517/660 builds (which need to build a wheel) cannot run.  Providing a
``setup.py`` and omitting ``[build-system]`` from pyproject.toml makes
``pip install -e .`` take the legacy ``setup.py develop`` path, which works
offline.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
